package touchstone

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
	"repro/internal/vectfit"
)

var update = flag.Bool("update", false, "regenerate the golden .snp files")

func goldenPath(ports int, format Format) string {
	return filepath.Join("testdata", "golden",
		fmt.Sprintf("case_p%d_%s.s%dp", ports, strings.ToLower(format.String()), ports))
}

func goldenSamples(t testing.TB, ports int) []vectfit.Sample {
	t.Helper()
	m, err := statespace.Generate(7, statespace.GenOptions{
		Ports: ports, Order: 4 * ports, TargetPeak: 0.9, GridPoints: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vectfit.SampleModel(m, statespace.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 16))
}

// regenGolden writes the Write∘Parse fixpoint of the golden sample set:
// iterating Write→Parse until two consecutive Writes agree byte-for-byte
// guarantees the checked-in file satisfies the round-trip identity exactly
// (a single Write of fresh samples can land within a digit-rounding
// boundary of the 12-significant-digit output format).
func regenGolden(t *testing.T, ports int, format Format) {
	t.Helper()
	samples := goldenSamples(t, ports)
	var prev []byte
	for iter := 0; iter < 8; iter++ {
		var buf bytes.Buffer
		if err := Write(&buf, samples, format, 50); err != nil {
			t.Fatal(err)
		}
		if prev != nil && bytes.Equal(prev, buf.Bytes()) {
			path := goldenPath(ports, format)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, prev, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		prev = buf.Bytes()
		d, err := Parse(bytes.NewReader(prev), ports)
		if err != nil {
			t.Fatalf("p=%d %v: golden candidate does not re-parse: %v", ports, format, err)
		}
		samples = d.Samples
	}
	t.Fatalf("p=%d %v: Write∘Parse did not reach a fixpoint", ports, format)
}

// TestGoldenRoundTrip checks, against checked-in .snp files, that
// Write → Parse → Write is byte-identical for every format and port count
// 1–4. Any change to the emitter or parser that moves a single byte fails
// here; regenerate deliberately with -update.
func TestGoldenRoundTrip(t *testing.T) {
	for _, ports := range []int{1, 2, 3, 4} {
		for _, format := range []Format{RI, MA, DB} {
			if *update {
				regenGolden(t, ports, format)
			}
			path := goldenPath(ports, format)
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			d, err := Parse(bytes.NewReader(golden), ports)
			if err != nil {
				t.Fatalf("p=%d %v: parse golden: %v", ports, format, err)
			}
			var out bytes.Buffer
			if err := Write(&out, d.Samples, format, d.Reference); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), golden) {
				t.Fatalf("p=%d %v: Write∘Parse is not byte-identical to %s", ports, format, path)
			}
		}
	}
}

// TestParseWritePreservesSamples is the round-trip property test on
// randomized matrices (not model samples): Parse(Write(x)) must preserve
// every entry to 1e-9 relative accuracy in all three formats, including
// negative real parts, phases in all four quadrants and exact zeros (DB
// clamps them to the −300 dB floor, i.e. 1e-15 ≪ the tolerance).
func TestParseWritePreservesSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, ports := range []int{1, 2, 3, 5} {
		var in []vectfit.Sample
		omega := 1e8
		for s := 0; s < 12; s++ {
			omega *= 1 + rng.Float64()
			h := mat.NewCDense(ports, ports)
			for e := range h.Data {
				h.Data[e] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
			}
			if s == 3 {
				h.Data[0] = 0 // exercise the DB zero clamp
			}
			in = append(in, vectfit.Sample{Omega: omega, H: h})
		}
		for _, format := range []Format{RI, MA, DB} {
			var buf bytes.Buffer
			if err := Write(&buf, in, format, 50); err != nil {
				t.Fatal(err)
			}
			d, err := Parse(bytes.NewReader(buf.Bytes()), ports)
			if err != nil {
				t.Fatalf("p=%d %v: %v", ports, format, err)
			}
			if len(d.Samples) != len(in) {
				t.Fatalf("p=%d %v: %d samples", ports, format, len(d.Samples))
			}
			for s := range in {
				if math.Abs(d.Samples[s].Omega-in[s].Omega) > 1e-9*in[s].Omega {
					t.Fatalf("p=%d %v sample %d: omega %g vs %g", ports, format, s, d.Samples[s].Omega, in[s].Omega)
				}
				for e := range in[s].H.Data {
					got, want := d.Samples[s].H.Data[e], in[s].H.Data[e]
					if cmplx.Abs(got-want) > 1e-9*(1+cmplx.Abs(want)) {
						t.Fatalf("p=%d %v sample %d entry %d: %v vs %v", ports, format, s, e, got, want)
					}
				}
			}
		}
	}
}
