package touchstone

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/statespace"
	"repro/internal/vectfit"
)

// gobBytes serializes a value for exact (bit-level) comparison; gob
// encodes float64 fields losslessly.
func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingBufferedFitEquivalence is the streaming⇄buffered
// equivalence battery: driving vectfit.Fitter.Add from a streaming Reader
// must produce a bit-identical model (and diagnostics) to the batch
// vectfit.Fit entry point fed by the buffered Parse, on scaled-down
// Table-I cases (same seeds and calibrated peaks as the paper benchmarks,
// orders shrunk to keep the fit in test budget). CI runs this under -race.
func TestStreamingBufferedFitEquivalence(t *testing.T) {
	for _, id := range []int{1, 4, 7} {
		spec, err := statespace.FindCase(id)
		if err != nil {
			t.Fatal(err)
		}
		// Shrink hard: the VF least-squares SVD dominates, and this test is
		// about bit-identity of the two ingestion paths, not fit quality.
		ports := spec.P
		if ports > 3 {
			ports = 3
		}
		m, err := statespace.Generate(spec.Seed, statespace.GenOptions{
			Ports: ports, Order: spec.N / 50, TargetPeak: spec.TargetPeak, GridPoints: 40,
		})
		if err != nil {
			t.Fatalf("case %d mini: %v", id, err)
		}
		samples := vectfit.SampleModel(m, statespace.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 36))
		var file bytes.Buffer
		if err := Write(&file, samples, RI, 50); err != nil {
			t.Fatal(err)
		}

		// Buffered path: collect-all Parse, batch Fit.
		d, err := Parse(bytes.NewReader(file.Bytes()), ports)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := vectfit.Fit(d.Samples, 6, vectfit.Options{})
		if err != nil {
			t.Fatalf("case %d batch fit: %v", id, err)
		}

		// Streaming path: Reader → Fitter.Add → Finish.
		rd, err := NewReader(bytes.NewReader(file.Bytes()), ports)
		if err != nil {
			t.Fatal(err)
		}
		ft := vectfit.NewFitter(6, vectfit.Options{})
		if err := rd.Each(ft.Add); err != nil {
			t.Fatal(err)
		}
		if ft.Len() != len(d.Samples) {
			t.Fatalf("case %d: fitter saw %d samples, parse %d", id, ft.Len(), len(d.Samples))
		}
		stream, err := ft.Finish()
		if err != nil {
			t.Fatalf("case %d streaming fit: %v", id, err)
		}

		if !bytes.Equal(gobBytes(t, batch.Model), gobBytes(t, stream.Model)) {
			t.Fatalf("case %d: streaming and batch models are not bit-identical", id)
		}
		if batch.RMSError != stream.RMSError {
			t.Fatalf("case %d: RMS %v vs %v", id, batch.RMSError, stream.RMSError)
		}
		for c := range batch.Iterations {
			if batch.Iterations[c] != stream.Iterations[c] {
				t.Fatalf("case %d column %d: iteration counts differ", id, c)
			}
		}
	}
}
