package touchstone

import (
	"bytes"
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
	"repro/internal/vectfit"
)

func sampleSet(t *testing.T, ports int) []vectfit.Sample {
	t.Helper()
	m, err := statespace.Generate(7, statespace.GenOptions{
		Ports: ports, Order: 4 * ports, TargetPeak: 0.9, GridPoints: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vectfit.SampleModel(m, statespace.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 40))
}

func roundTrip(t *testing.T, ports int, format Format) {
	t.Helper()
	in := sampleSet(t, ports)
	var buf bytes.Buffer
	if err := Write(&buf, in, format, 50); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf, ports)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ports != ports || len(d.Samples) != len(in) {
		t.Fatalf("round trip shape: %d ports, %d samples", d.Ports, len(d.Samples))
	}
	for s := range in {
		if math.Abs(d.Samples[s].Omega-in[s].Omega) > 1e-6*in[s].Omega {
			t.Fatalf("sample %d frequency %g vs %g", s, d.Samples[s].Omega, in[s].Omega)
		}
		for i := 0; i < ports; i++ {
			for j := 0; j < ports; j++ {
				got := d.Samples[s].H.At(i, j)
				want := in[s].H.At(i, j)
				if cmplx.Abs(got-want) > 1e-9*(1+cmplx.Abs(want)) {
					t.Fatalf("sample %d entry (%d,%d): %v vs %v", s, i, j, got, want)
				}
			}
		}
	}
}

func TestRoundTripFormatsAndPorts(t *testing.T) {
	for _, ports := range []int{1, 2, 3, 4} {
		for _, f := range []Format{RI, MA, DB} {
			roundTrip(t, ports, f)
		}
	}
}

func TestParseOptionLine(t *testing.T) {
	src := `! comment
# MHz S RI R 75
100 0.5 0.1
200 0.4 -0.2
`
	d, err := Parse(strings.NewReader(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reference != 75 {
		t.Fatalf("reference %g", d.Reference)
	}
	if len(d.Samples) != 2 {
		t.Fatalf("%d samples", len(d.Samples))
	}
	wantW := 2 * math.Pi * 100e6
	if math.Abs(d.Samples[0].Omega-wantW) > 1e-3 {
		t.Fatalf("omega %g, want %g", d.Samples[0].Omega, wantW)
	}
	if d.Samples[0].H.At(0, 0) != complex(0.5, 0.1) {
		t.Fatalf("S11 = %v", d.Samples[0].H.At(0, 0))
	}
}

func TestParseTwoPortColumnOrder(t *testing.T) {
	// 2-port files store S11 S21 S12 S22.
	src := "# GHz S RI R 50\n1 11 0 21 0 12 0 22 0\n"
	d, err := Parse(strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	h := d.Samples[0].H
	if real(h.At(0, 0)) != 11 || real(h.At(1, 0)) != 21 || real(h.At(0, 1)) != 12 || real(h.At(1, 1)) != 22 {
		t.Fatalf("2-port order wrong: %v", h)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"y-params":        "# GHz Y RI R 50\n1 0.5 0.1\n",
		"bad number":      "# GHz S RI R 50\n1 x 0.1\n",
		"wrong count":     "# GHz S RI R 50\n1 0.5\n",
		"double option":   "# GHz S RI\n# GHz S RI\n1 0.5 0.1\n",
		"non-monotone":    "# GHz S RI R 50\n2 0.5 0.1\n1 0.4 0.2\n",
		"unknown token":   "# GHz S RI FOO\n1 0.5 0.1\n",
		"R without value": "# GHz S RI R\n1 0.5 0.1\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src), 1); err == nil {
			t.Fatalf("%s: expected parse error", name)
		}
	}
	if _, err := Parse(strings.NewReader(""), 0); err == nil {
		t.Fatal("expected error for 0 ports")
	}
}

func TestParseRejectsDataBeforeOptionLine(t *testing.T) {
	// Data ahead of (or without) the # line used to be parsed with assumed
	// GHz/MA defaults — wrong by orders of magnitude for an Hz/RI file.
	for name, src := range map[string]string{
		"no option line":   "1 1.0 90\n",
		"data then option": "1 1.0 90\n# GHz S MA R 50\n2 1.0 90\n",
	} {
		if _, err := Parse(strings.NewReader(src), 1); err == nil ||
			!strings.Contains(err.Error(), "option line") {
			t.Fatalf("%s: want an option-line error, got %v", name, err)
		}
	}
	// Comments and blank lines before the option line stay legal.
	src := "! header comment\n\n# GHz S MA R 50\n1 1.0 90\n"
	d, err := Parse(strings.NewReader(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(d.Samples[0].H.At(0, 0)-complex(0, 1)) > 1e-12 {
		t.Fatalf("MA parse broken: %v", d.Samples[0].H.At(0, 0))
	}
}

func TestWriteDBClampsZeroMagnitude(t *testing.T) {
	// An exactly-zero entry is 20·log10(0) = −Inf dB, which Parse rejects;
	// Write must clamp it to the −300 dB floor and round-trip cleanly.
	h := mat.NewCDense(2, 2)
	h.Set(0, 0, 0.5)
	h.Set(1, 1, 0.25+0.25i)
	// (0,1) and (1,0) stay exactly zero.
	in := []vectfit.Sample{{Omega: 2 * math.Pi * 1e9, H: h}}
	var buf bytes.Buffer
	if err := Write(&buf, in, DB, 50); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Inf") {
		t.Fatalf("DB output contains Inf:\n%s", buf.String())
	}
	d, err := Parse(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatalf("clamped DB file does not parse: %v", err)
	}
	got := d.Samples[0].H
	if cmplx.Abs(got.At(0, 0)-0.5) > 1e-9 {
		t.Fatalf("S11 = %v", got.At(0, 0))
	}
	// −300 dB = 1e-15: numerically zero for S-parameters.
	if cmplx.Abs(got.At(0, 1)) > 1.1e-15 || cmplx.Abs(got.At(1, 0)) > 1.1e-15 {
		t.Fatalf("clamped zeros came back too large: %v %v", got.At(0, 1), got.At(1, 0))
	}
}

func TestEndToEndTouchstoneToPassivity(t *testing.T) {
	// Full flow: model → touchstone → parse → vector fit → Hamiltonian.
	in := sampleSet(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, in, RI, 50); err != nil {
		t.Fatal(err)
	}
	d, err := Parse(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := vectfit.Fit(d.Samples, 8, vectfit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSError > 1e-6 {
		t.Fatalf("fit RMS %g", fit.RMSError)
	}
}

func TestWriteErrors(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil, RI, 50); err == nil {
		t.Fatal("expected error for empty samples")
	}
}

func TestFormatString(t *testing.T) {
	if RI.String() != "RI" || MA.String() != "MA" || DB.String() != "DB" {
		t.Fatal("format strings wrong")
	}
	if Format(9).String() != "Format(9)" {
		t.Fatal("fallback string wrong")
	}
}
