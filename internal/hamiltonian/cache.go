package hamiltonian

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/statespace"
)

// ShiftCache memoizes factored shift-invert state (shiftFactor) across
// ShiftInvert calls. One cache may serve many Ops — the fleet engine
// attaches a single cache to every job so concurrent characterizations of
// the same model share factorizations.
//
// Key scheme: (op id, model kernel epoch, exact Float64bits of ϑ). The
// epoch component makes invalidation free — InvalidateKernels bumps the
// model epoch, so every entry factored against the superseded kernels
// simply stops matching and ages out of the LRU; enforcement's perturbed
// models can never be served stale panels. The shift component is the
// exact bit pattern, not a lossy rounding: two different ϑs must never
// share a factorization or the bit-identical-crossings invariant dies.
// The repeat hits the cache exists for are already exact-bit repeats —
// canonical-polish seeds are quantized to a fixed grid upstream (see
// core.canonicalPolish), and prefactored startup shifts are consumed
// verbatim by the per-shift eigensolver tasks.
//
// Lifecycle: Get pins the entry (refcount) for the duration of the
// caller's Arnoldi run; ShiftOp.Release unpins it. Eviction walks the LRU
// from the cold end and skips pinned entries, so the cache may transiently
// exceed capacity when everything resident is in flight; the overshoot is
// bounded by the worker count. An evicted-while-referenced factor stays
// valid for its holders (it is immutable and garbage-collected), eviction
// only forgets it.
//
// A ShiftCache is safe for concurrent use. Concurrent misses on the same
// key are collapsed: the first caller factors, later callers wait on the
// entry's ready channel and count as hits.
type ShiftCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[shiftKey]*cacheEntry
	lru      *list.List // front = hottest; element values are *cacheEntry

	hits, misses, evictions atomic.Uint64
}

// shiftKey identifies one factorization: which operator, which kernel
// generation, which compute backend, which exact shift. The backend
// component is belt-and-braces — SetBackend also bumps the kernel epoch —
// but makes the invariant local: a factor built against one backend's
// floating-point stream can never be served to another. HalfOps key with
// their own opID, so half- and full-path factors of the same model never
// collide either.
type shiftKey struct {
	opID    uint64
	epoch   uint64
	backend statespace.Backend
	re, im  uint64 // math.Float64bits of the shift
}

type cacheEntry struct {
	cache *ShiftCache
	key   shiftKey
	elem  *list.Element
	refs  int // pins, guarded by cache.mu

	ready chan struct{} // closed once fac/err are set
	fac   *shiftFactor
	err   error
}

// NewShiftCache builds a cache holding up to capacity factorizations
// (minimum 1).
func NewShiftCache(capacity int) *ShiftCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ShiftCache{
		capacity: capacity,
		entries:  make(map[shiftKey]*cacheEntry, capacity),
		lru:      list.New(),
	}
}

// CacheStats is a snapshot of cache traffic.
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// Stats returns cumulative cache-wide counters. Hits include waits on an
// in-flight factorization (no setup work performed); misses count actual
// factorizations.
func (c *ShiftCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len returns the number of resident entries.
func (c *ShiftCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func shiftKeyFor(op *Op, theta complex128) shiftKey {
	return shiftKey{
		opID:    op.id,
		epoch:   op.Model.KernelEpoch(),
		backend: op.Model.ActiveBackend(),
		re:      math.Float64bits(real(theta)),
		im:      math.Float64bits(imag(theta)),
	}
}

// acquire returns the pinned entry for key, plus whether this caller must
// populate it (miss). On a hit the entry may still be in flight — wait on
// ready before touching fac/err.
func (c *ShiftCache) acquire(key shiftKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.hits.Add(1)
		return e, false
	}
	e := &cacheEntry{cache: c, key: key, refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.misses.Add(1)
	c.evictLocked()
	return e, true
}

// release unpins an entry and retries any eviction debt the pin was
// blocking.
func (c *ShiftCache) release(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if c.lru.Len() > c.capacity {
		c.evictLocked()
	}
}

// evictLocked drops cold unpinned entries until the cache fits capacity or
// only pinned entries remain. Callers hold c.mu.
func (c *ShiftCache) evictLocked() {
	for c.lru.Len() > c.capacity {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if e.refs > 0 {
				continue // pinned by an in-flight run
			}
			c.removeLocked(e)
			c.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return // everything resident is in flight; allow overflow
		}
	}
}

func (c *ShiftCache) removeLocked(e *cacheEntry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	e.elem = nil
}

// discard removes a failed entry so the error is not memoized (the retry
// layer in core nudges the shift, producing a different key anyway).
func (c *ShiftCache) discard(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.elem != nil {
		c.removeLocked(e)
	}
}

// shiftInvert is the cached ShiftInvert path: pin-or-factor, then wrap the
// shared factor in a pooled per-caller ShiftOp. A hit performs no
// factorization work and no allocations.
func (c *ShiftCache) shiftInvert(op *Op, theta complex128) (*ShiftOp, error) {
	e, mustFactor := c.acquire(shiftKeyFor(op, theta))
	if mustFactor {
		e.fac, e.err = op.factorShift(theta)
		close(e.ready)
		op.cacheMisses.Add(1)
	} else {
		<-e.ready
		op.cacheHits.Add(1)
	}
	if e.err != nil {
		err := e.err
		c.discard(e)
		return nil, err
	}
	return op.newShiftOp(e.fac, e), nil
}

// shiftInvertHalf is the cached ShiftInvert path for the half-size
// operator, mirroring shiftInvert. Half-path traffic is attributed to the
// parent Op's counters — callers see one characterization's cache story
// regardless of which path served it.
func (c *ShiftCache) shiftInvertHalf(h *HalfOp, tau complex128) (*HalfShiftOp, error) {
	e, mustFactor := c.acquire(h.shiftKeyFor(tau))
	if mustFactor {
		e.fac, e.err = h.factorShift(tau)
		close(e.ready)
		h.op.cacheMisses.Add(1)
	} else {
		<-e.ready
		h.op.cacheHits.Add(1)
	}
	if e.err != nil {
		err := e.err
		c.discard(e)
		return nil, err
	}
	return h.newShiftOp(e.fac, e), nil
}

// publish installs an externally built factor (the batched prefactor
// path) under key and immediately unpins it. If the key is already
// resident or in flight, the existing entry wins and fac is dropped —
// both are bit-identical by construction.
func (c *ShiftCache) publish(key shiftKey, fac *shiftFactor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry{cache: c, key: key, fac: fac, ready: make(chan struct{})}
	close(e.ready)
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.evictLocked()
}

// SetShiftCache attaches (or, with nil, detaches) a factorization cache.
// Safe to call concurrently with solves; in-flight operators keep whatever
// factor they already hold.
func (op *Op) SetShiftCache(c *ShiftCache) { op.cache.Store(c) }

// ShiftCacheHandle returns the attached cache, or nil.
func (op *Op) ShiftCacheHandle() *ShiftCache { return op.cache.Load() }

// EnsureShiftCache attaches a fresh cache of the given capacity if none is
// attached yet, and returns the attached cache. capacity < 1 is clamped.
func (op *Op) EnsureShiftCache(capacity int) *ShiftCache {
	if c := op.cache.Load(); c != nil {
		return c
	}
	c := NewShiftCache(capacity)
	if op.cache.CompareAndSwap(nil, c) {
		return c
	}
	return op.cache.Load()
}

// OpCacheStats reports cache traffic attributed to this operator (hits and
// misses seen by its own ShiftInvert calls), regardless of how many other
// operators share the cache. Zero without an attached cache.
func (op *Op) OpCacheStats() CacheStats {
	return CacheStats{Hits: op.cacheHits.Load(), Misses: op.cacheMisses.Load()}
}

// PrefactorShifts factors every shift in thetas into the attached cache
// using one batched pass over the packed kernels (CResolventBMulti /
// BTResolventCTMulti): all 2·len(thetas) resolvent panels are computed
// while each model block's coefficients are hot, then each capacitance is
// assembled and factored exactly as the single-shift path would. Shifts
// already resident (or in flight) are skipped; shifts that hit a pole or
// an eigenvalue are silently left unfactored — the per-shift solve path
// reports (and retries) those errors itself. No-op without a cache.
//
// The published factors are bit-identical to what ShiftInvert would build,
// so prefactoring changes when setup work happens, never what any solve
// computes.
func (op *Op) PrefactorShifts(thetas []complex128) {
	c := op.cache.Load()
	if c == nil || len(thetas) == 0 {
		return
	}
	// Reserve: figure out which shifts actually need factoring.
	need := make([]complex128, 0, len(thetas))
	keys := make([]shiftKey, 0, len(thetas))
	seen := make(map[shiftKey]struct{}, len(thetas))
	for _, th := range thetas {
		k := shiftKeyFor(op, th)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		c.mu.Lock()
		_, resident := c.entries[k]
		c.mu.Unlock()
		if resident {
			continue
		}
		need = append(need, th)
		keys = append(keys, k)
	}
	if len(need) == 0 {
		return
	}
	p := op.P
	pp := p * p
	x1 := make([]complex128, len(need)*pp)
	x2 := make([]complex128, len(need)*pp)
	errs := make([]error, 2*len(need))
	op.Model.CResolventBMulti(x1, need, errs[:len(need)])
	// x2 panels are evaluated at −ϑ, matching factorShift.
	neg := make([]complex128, len(need))
	for i, th := range need {
		neg[i] = -th
	}
	op.Model.BTResolventCTMulti(x2, neg, errs[len(need):])
	for i, th := range need {
		if errs[i] != nil || errs[len(need)+i] != nil {
			continue // pole hit; the solve path owns the error/retry story
		}
		fac, err := op.assembleFactor(th, x1[i*pp:(i+1)*pp], x2[i*pp:(i+1)*pp])
		if err != nil {
			continue
		}
		c.publish(keys[i], fac)
	}
}
