package hamiltonian

import (
	"math/rand"
	"testing"
)

// Allocation regressions for the two hot operator paths. Seed numbers
// (pre-packed kernels, PR 1 baseline): Op.Apply allocated 3 slices per
// call (t, wt ∈ C^{2p}, u ∈ C^{2n}) and ShiftOp.Apply 1 (the CLU
// permutation gather buffer) — about 30.5k allocs and ~199 MB per Fig. 6
// Case-5 solve. Both must now be allocation-free in steady state: Op.Apply
// draws its workspace from a sync.Pool and ShiftOp owns all its scratch.

func TestOpApplyZeroAllocs(t *testing.T) {
	m := testModel(t, 11, 4, 24, 0.95)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := randCVec(rng, op.Dim())
	y := make([]complex128, op.Dim())
	op.Apply(y, x) // warm the workspace pool and the packed-kernel cache
	if avg := testing.AllocsPerRun(100, func() { op.Apply(y, x) }); avg != 0 {
		t.Fatalf("Op.Apply allocates %.1f objects per call, want 0", avg)
	}
}

func TestShiftOpApplyZeroAllocs(t *testing.T) {
	m := testModel(t, 12, 4, 24, 0.95)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	so, err := op.ShiftInvert(complex(0, 0.5*m.MaxPoleMagnitude()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := randCVec(rng, op.Dim())
	y := make([]complex128, op.Dim())
	if err := so.Apply(y, x); err != nil { // warm the CLU gather buffer
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := so.Apply(y, x); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("ShiftOp.Apply allocates %.1f objects per call, want 0", avg)
	}
}
