package hamiltonian

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
)

// RefineEig polishes an approximate Hamiltonian eigenvalue by fixed-shift
// inverse iteration with the structured O(n·p) shift-invert operator,
// followed by a Rayleigh-quotient evaluation. Because the initial estimate
// is already close, a handful of iterations reaches the limiting accuracy
// of the factorization; the cost is one SMW setup plus `iters` applies.
//
// Returns the refined eigenvalue and the final residual ‖M·v − λ·v‖.
func (op *Op) RefineEig(lambda complex128, iters int) (complex128, float64, error) {
	if iters <= 0 {
		iters = 6
	}
	dim := op.Dim()
	// Offset the shift slightly so (M − ϑI) stays comfortably invertible.
	scale := cmplx.Abs(lambda)
	if scale == 0 {
		scale = 1
	}
	offset := complex(1e-8*scale, 1e-8*scale)
	so, err := op.ShiftInvert(lambda + offset)
	if err != nil {
		// Extremely unlucky: the offset shift is also an eigenvalue. Use a
		// larger offset once.
		so, err = op.ShiftInvert(lambda + 100*offset)
		if err != nil {
			return 0, 0, err
		}
	}
	defer so.Release()
	// Deterministic start vector.
	v := make([]complex128, dim)
	st := uint64(0x243f6a8885a308d3)
	for i := range v {
		st = st*6364136223846793005 + 1442695040888963407
		v[i] = complex(float64(st>>40)/float64(1<<24)-0.5, float64(st>>33&0xffffff)/float64(1<<24)-0.5)
	}
	mat.CScaleVec(complex(1/mat.CNorm2(v), 0), v)
	w := make([]complex128, dim)
	iterate := func(s *ShiftOp, steps int) error {
		for it := 0; it < steps; it++ {
			if err := s.Apply(w, v); err != nil {
				return err
			}
			nrm := mat.CNorm2(w)
			if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
				return nil
			}
			mat.CScaleVec(complex(1/nrm, 0), w)
			v, w = w, v
		}
		return nil
	}
	rayleigh := func() complex128 {
		op.Apply(w, v)
		return mat.CDot(v, w)
	}
	if err := iterate(so, iters); err != nil {
		return 0, 0, err
	}
	mu := rayleigh()
	// Second stage: one Rayleigh-quotient restart. Re-factoring at the
	// refined estimate pushes the accuracy from ~|offset| down to the
	// factorization noise floor, which lets callers deduplicate crossings
	// with a window far below genuine narrow-band widths.
	if so2, err := op.ShiftInvert(mu + offset/1e4); err == nil {
		err := iterate(so2, 3)
		so2.Release()
		if err != nil {
			return 0, 0, err
		}
		mu = rayleigh()
	}
	// Residual of the final pair (w currently holds M·v before the dot;
	// recompute cleanly).
	op.Apply(w, v)
	mat.CAxpy(-mu, v, w)
	return mu, mat.CNorm2(w), nil
}

// ClassifyImag reports whether a (refined) eigenvalue is purely imaginary
// within the relative tolerance axisTol·max(|Im λ|, floor).
func ClassifyImag(lambda complex128, axisTol, floor float64) bool {
	ref := math.Abs(imag(lambda))
	if ref < floor {
		ref = floor
	}
	return math.Abs(real(lambda)) <= axisTol*ref
}

// ClassifyImagWithResidual is ClassifyImag extended with the refinement's
// own error bar: for ill-conditioned eigenvalues the refined real part can
// carry an error comparable to the final residual, so a real part hidden
// below ~10× the residual cannot be distinguished from zero and counts as
// imaginary. (A λ_min sign change in the underlying passivity margin forces
// an exactly imaginary eigenvalue, so under-rejecting is the safe side.)
func ClassifyImagWithResidual(lambda complex128, resid, axisTol, floor float64) bool {
	if ClassifyImag(lambda, axisTol, floor) {
		return true
	}
	return math.Abs(real(lambda)) <= 10*resid
}

// IsCrossing decides whether ω is a true passivity-boundary frequency by
// the defining physical test rather than by eigenvalue classification
// (which is unreliable for ill-conditioned Hamiltonian eigenvalues):
//
//   - scattering: some σ_i(H(jω)) equals 1 within tol;
//   - immittance: some eigenvalue of H(jω)+H(jω)ᴴ equals 0 within
//     tol·‖H+Hᴴ‖.
//
// By the Hamiltonian correspondence this test is exact: it accepts ω iff
// jω is (numerically) an eigenvalue of M. Pass tol = 0 for the default
// 1e-6.
func (op *Op) IsCrossing(omega float64, tol float64) (bool, error) {
	if tol == 0 {
		tol = 1e-6
	}
	h := op.Model.EvalJW(omega)
	switch op.Rep {
	case Scattering:
		sv, err := mat.SingularValues(h)
		if err != nil {
			return false, err
		}
		for _, s := range sv {
			if math.Abs(s-1) <= tol {
				return true, nil
			}
		}
		return false, nil
	case Immittance:
		g := h.Add(h.H())
		vals, err := mat.CEigValues(g)
		if err != nil {
			return false, err
		}
		scale := g.FrobNorm()
		if scale < 1 {
			scale = 1
		}
		for _, v := range vals {
			if math.Abs(real(v)) <= tol*scale {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("hamiltonian: unknown representation %v", op.Rep)
	}
}
