package hamiltonian

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/statespace"
)

func testModel(t *testing.T, seed int64, ports, order int, peak float64) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: ports, Order: order, TargetPeak: peak, GridPoints: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randCVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func TestNewRejectsNonContractiveD(t *testing.T) {
	m := testModel(t, 1, 2, 6, 1.05)
	m.D = mat.Eye(2).Scale(1.5)
	if _, err := New(m, Scattering); err != ErrNotAsymptoticallyPassive {
		t.Fatalf("expected ErrNotAsymptoticallyPassive, got %v", err)
	}
}

func TestApplyMatchesDense(t *testing.T) {
	m := testModel(t, 2, 3, 14, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	dense := op.Dense().ToComplex()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		x := randCVec(rng, op.Dim())
		y := make([]complex128, op.Dim())
		op.Apply(y, x)
		want := dense.MulVec(x)
		for i := range y {
			if cmplx.Abs(y[i]-want[i]) > 1e-8*(1+cmplx.Abs(want[i])) {
				t.Fatalf("trial %d: Apply mismatch at %d: %v vs %v", trial, i, y[i], want[i])
			}
		}
	}
}

func TestShiftInvertMatchesDenseInverse(t *testing.T) {
	m := testModel(t, 4, 2, 10, 1.08)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	dim := op.Dim()
	dense := op.Dense().ToComplex()
	rng := rand.New(rand.NewSource(7))
	for _, theta := range []complex128{
		complex(0, 5e9), complex(1e8, 1e9), complex(0, 0), complex(-2e8, 2e10),
	} {
		shifted := dense.Clone()
		for i := 0; i < dim; i++ {
			shifted.Set(i, i, shifted.At(i, i)-theta)
		}
		f, err := mat.CLUFactor(shifted)
		if err != nil {
			t.Fatalf("theta %v: dense factor: %v", theta, err)
		}
		so, err := op.ShiftInvert(theta)
		if err != nil {
			t.Fatalf("theta %v: %v", theta, err)
		}
		x := randCVec(rng, dim)
		y := make([]complex128, dim)
		if err := so.Apply(y, x); err != nil {
			t.Fatal(err)
		}
		want := f.Solve(x)
		var scale float64
		for i := range want {
			if a := cmplx.Abs(want[i]); a > scale {
				scale = a
			}
		}
		for i := range y {
			if cmplx.Abs(y[i]-want[i]) > 1e-7*scale {
				t.Fatalf("theta %v: SMW mismatch at %d: %v vs %v", theta, i, y[i], want[i])
			}
		}
	}
}

func TestShiftInvertRoundTrip(t *testing.T) {
	// (M − ϑI)·((M − ϑI)⁻¹ x) must reproduce x using only structured ops.
	m := testModel(t, 5, 3, 12, 1.02)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	dim := op.Dim()
	theta := complex(0, 3e9)
	so, err := op.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x := randCVec(rng, dim)
	y := make([]complex128, dim)
	if err := so.Apply(y, x); err != nil {
		t.Fatal(err)
	}
	z := make([]complex128, dim)
	op.Apply(z, y)
	for i := range z {
		z[i] -= theta * y[i]
	}
	num, den := 0.0, mat.CNorm2(x)
	for i := range z {
		num += cmplx.Abs(z[i]-x[i]) * cmplx.Abs(z[i]-x[i])
	}
	if math.Sqrt(num) > 1e-7*den {
		t.Fatalf("round-trip residual %g", math.Sqrt(num)/den)
	}
}

func TestHamiltonianSpectralSymmetryProperty(t *testing.T) {
	// Hamiltonian spectra are symmetric about the imaginary axis:
	// λ ∈ σ(M) ⇒ −λ* ∈ σ(M). (Real matrix also gives conjugate pairs.)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 4 + 2*rng.Intn(4)
		m, err := statespace.Generate(seed, statespace.GenOptions{
			Ports: 2, Order: order, TargetPeak: 1.05, GridPoints: 60,
		})
		if err != nil {
			return false
		}
		// Work on the dimensionless-frequency model: dense QR accuracy
		// degrades on entries spanning 1e18, and the symmetry check needs
		// accurate eigenvalues.
		op, err := New(m.FrequencyScaled(m.MaxPoleMagnitude()), Scattering)
		if err != nil {
			return false
		}
		vals, err := mat.EigValues(op.Dense())
		if err != nil {
			return false
		}
		var scale float64
		for _, v := range vals {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		// For each λ, find a partner ≈ −conj(λ).
		used := make([]bool, len(vals))
		for _, v := range vals {
			target := -cmplx.Conj(v)
			found := false
			for i, w := range vals {
				if used[i] {
					continue
				}
				if cmplx.Abs(w-target) < 1e-6*scale {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestImagEigsMatchSingularValueCrossings(t *testing.T) {
	// Ground truth consistency: jω ∈ σ(M) ⇔ some σ_i(H(jω)) = 1.
	m := testModel(t, 11, 2, 16, 1.06)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	crossings, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) == 0 {
		t.Skip("calibrated model happens to be passive; covered elsewhere")
	}
	for _, w := range crossings {
		h := m.EvalJW(w)
		sv, err := mat.SingularValues(h)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, s := range sv {
			if d := math.Abs(s - 1); d < best {
				best = d
			}
		}
		if best > 1e-6 {
			t.Fatalf("ω=%g: no singular value near 1 (closest gap %g)", w, best)
		}
	}
}

func TestPassiveModelHasNoImagEigs(t *testing.T) {
	m := testModel(t, 12, 2, 14, 0.85)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	crossings, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 0 {
		t.Fatalf("passive model reported crossings: %v", crossings)
	}
}

func TestImmittanceOperator(t *testing.T) {
	// Build a model with D + Dᵀ nonsingular and verify Apply vs Dense.
	m := testModel(t, 13, 2, 8, 1.05)
	m.D = mat.DenseFromSlice(2, 2, []float64{0.5, 0.1, -0.2, 0.4})
	op, err := New(m, Immittance)
	if err != nil {
		t.Fatal(err)
	}
	dense := op.Dense().ToComplex()
	rng := rand.New(rand.NewSource(14))
	x := randCVec(rng, op.Dim())
	y := make([]complex128, op.Dim())
	op.Apply(y, x)
	want := dense.MulVec(x)
	for i := range y {
		if cmplx.Abs(y[i]-want[i]) > 1e-8*(1+cmplx.Abs(want[i])) {
			t.Fatalf("immittance Apply mismatch at %d", i)
		}
	}
	// Shift-invert consistency too (W is singular here, which is exactly
	// why the I + WVGU form is used).
	theta := complex(0, 1e9)
	so, err := op.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	if err := so.Apply(y, x); err != nil {
		t.Fatal(err)
	}
	shifted := dense.Clone()
	for i := 0; i < op.Dim(); i++ {
		shifted.Set(i, i, shifted.At(i, i)-theta)
	}
	f, err := mat.CLUFactor(shifted)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.Solve(x)
	var scale float64
	for i := range ref {
		if a := cmplx.Abs(ref[i]); a > scale {
			scale = a
		}
	}
	for i := range y {
		if cmplx.Abs(y[i]-ref[i]) > 1e-7*scale {
			t.Fatalf("immittance SMW mismatch at %d", i)
		}
	}
}

func TestRepresentationString(t *testing.T) {
	if Scattering.String() != "scattering" || Immittance.String() != "immittance" {
		t.Fatal("bad Representation strings")
	}
	if Representation(9).String() != "Representation(9)" {
		t.Fatal("bad fallback string")
	}
}
