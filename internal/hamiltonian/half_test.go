package hamiltonian

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/statespace"
)

// reciprocalModel generates a reciprocal test model (symmetric H).
func reciprocalModel(t *testing.T, seed int64, ports, order int, peak float64) *statespace.Model {
	t.Helper()
	m, err := statespace.Generate(seed, statespace.GenOptions{
		Ports: ports, Order: order, TargetPeak: peak, GridPoints: 80,
		Reciprocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Reciprocal(0) {
		t.Fatal("generated model is not bit-exactly reciprocal")
	}
	return m
}

// denseHalfN assembles N = Q̃·P̃ = (A + B·Wq·C)·(A + B·Wp·C) directly from
// the operator's balanced model — an independent realization of the
// half-size derivation to validate the kernel path against.
func denseHalfN(t *testing.T, op *Op) *mat.Dense {
	t.Helper()
	m := op.Model
	p := op.P
	var wp, wq *mat.Dense
	switch op.Rep {
	case Scattering:
		ipd, err := mat.Inverse(mat.Eye(p).Add(m.D))
		if err != nil {
			t.Fatal(err)
		}
		imd, err := mat.Inverse(mat.Eye(p).Sub(m.D))
		if err != nil {
			t.Fatal(err)
		}
		wp, wq = ipd.Scale(-1), imd
	case Immittance:
		dinv, err := mat.Inverse(m.D)
		if err != nil {
			t.Fatal(err)
		}
		wp, wq = mat.NewDense(p, p), dinv.Scale(-1)
	}
	a, b, c := m.DenseA(), m.DenseB(), m.DenseC()
	pt := a.Add(b.Mul(wp).Mul(c)) // P̃
	qt := a.Add(b.Mul(wq).Mul(c)) // Q̃
	return qt.Mul(pt)
}

// TestHalfSpectrumIsSquaredHamiltonianSpectrum validates the core identity
// spec(M)² = spec(N) on dense eigendecompositions, for both
// representations.
func TestHalfSpectrumIsSquaredHamiltonianSpectrum(t *testing.T) {
	for _, rep := range []Representation{Scattering, Immittance} {
		m := reciprocalModel(t, 31, 3, 18, 1.05)
		if rep == Immittance {
			// Make D symmetric positive definite so D and D+Dᵀ are
			// comfortably invertible.
			m.D = m.D.Add(m.D.T()).Scale(0.5).Add(mat.Eye(3).Scale(2))
		}
		op, err := NewWith(m, rep, NewOptions{})
		if err != nil {
			t.Fatalf("%v: %v", rep, err)
		}
		if op.Half() == nil {
			t.Fatalf("%v: half path not engaged on a reciprocal model", rep)
		}
		mEigs, err := mat.EigValues(op.Dense())
		if err != nil {
			t.Fatal(err)
		}
		nEigs, err := mat.EigValues(denseHalfN(t, op))
		if err != nil {
			t.Fatal(err)
		}
		scale := 0.0
		for _, mu := range nEigs {
			if a := cmplx.Abs(mu); a > scale {
				scale = a
			}
		}
		tol := 1e-6 * scale
		// Every λ² from M must be an eigenvalue of N…
		for _, lam := range mEigs {
			mu := lam * lam
			best := tol + 1
			for _, nv := range nEigs {
				if d := cmplx.Abs(mu - nv); d < best {
					best = d
				}
			}
			if best > tol {
				t.Fatalf("%v: λ=%v: λ²=%v not in spec(N) (min dist %.3e, tol %.3e)", rep, lam, mu, best, tol)
			}
		}
		// …and every μ of N must be hit by some λ².
		for _, nv := range nEigs {
			best := tol + 1
			for _, lam := range mEigs {
				if d := cmplx.Abs(lam*lam - nv); d < best {
					best = d
				}
			}
			if best > tol {
				t.Fatalf("%v: μ=%v of N unmatched by any λ² (min dist %.3e)", rep, nv, best)
			}
		}
	}
}

// randRVec fills a random real vector for the half path's real applies.
func randRVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestHalfApplyBaseMatchesDense checks y = N·x from the structured real
// kernels against the independently assembled dense N.
func TestHalfApplyBaseMatchesDense(t *testing.T) {
	m := reciprocalModel(t, 32, 2, 16, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	h := op.Half()
	if h == nil {
		t.Fatal("half path not engaged")
	}
	nd := denseHalfN(t, op)
	so, err := h.ShiftInvert(complex(-1e18, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer so.Release()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		x := randRVec(rng, h.Dim())
		y := make([]float64, h.Dim())
		if err := so.ApplyBase(y, x); err != nil {
			t.Fatal(err)
		}
		want := nd.MulVec(x)
		scale := 0.0
		for i := range want {
			if a := math.Abs(want[i]); a > scale {
				scale = a
			}
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-8*scale {
				t.Fatalf("trial %d: ApplyBase mismatch at %d: %v vs %v", trial, i, y[i], want[i])
			}
		}
	}
}

// TestHalfShiftInvertMatchesDense checks the real SMW solve (N − τI)⁻¹·x
// against a dense LU solve for sweep-typical and general real shifts, and
// that a complex shift is rejected (the half path is real-only).
func TestHalfShiftInvertMatchesDense(t *testing.T) {
	m := reciprocalModel(t, 33, 3, 18, 1.08)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	h := op.Half()
	if h == nil {
		t.Fatal("half path not engaged")
	}
	n := h.Dim()
	nd := denseHalfN(t, op)
	rng := rand.New(rand.NewSource(11))
	for _, tau := range []complex128{
		op.SweepTheta(3e9, 0), op.SweepTheta(1e10, 0), complex(0, 0),
		complex(1e18, 0),
	} {
		shifted := nd.Clone()
		for i := 0; i < n; i++ {
			shifted.Set(i, i, shifted.At(i, i)-real(tau))
		}
		f, err := mat.LUFactor(shifted)
		if err != nil {
			t.Fatalf("tau %v: dense factor: %v", tau, err)
		}
		so, err := h.ShiftInvert(tau)
		if err != nil {
			t.Fatalf("tau %v: %v", tau, err)
		}
		x := randRVec(rng, n)
		y := make([]float64, n)
		if err := so.Apply(y, x); err != nil {
			t.Fatal(err)
		}
		want := f.Solve(x)
		scale := 0.0
		for i := range want {
			if a := math.Abs(want[i]); a > scale {
				scale = a
			}
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-7*scale {
				t.Fatalf("tau %v: SMW mismatch at %d: %v vs %v", tau, i, y[i], want[i])
			}
		}
		so.Release()
	}
	if _, err := h.ShiftInvert(complex(1e18, -5e18)); err == nil {
		t.Fatal("complex half shift must be rejected")
	}
}

// TestHalfPrefactorBitIdentity checks that prefactored half-path shifts
// produce bit-identical applies to the lazily factored ones, and that the
// half path under a cache matches the cacheless path exactly.
func TestHalfPrefactorBitIdentity(t *testing.T) {
	m := reciprocalModel(t, 34, 2, 14, 1.05)
	taus := []complex128{complex(-9e18, 0), complex(-4e19, 0), complex(-1e17, 0)}

	build := func(prefactor bool) [][]float64 {
		op, err := New(m, Scattering)
		if err != nil {
			t.Fatal(err)
		}
		h := op.Half()
		if h == nil {
			t.Fatal("half path not engaged")
		}
		if prefactor {
			op.EnsureShiftCache(8)
			op.PrefactorSweep(taus)
		}
		rng := rand.New(rand.NewSource(21))
		var outs [][]float64
		for _, tau := range taus {
			so, err := h.ShiftInvert(tau)
			if err != nil {
				t.Fatal(err)
			}
			x := randRVec(rng, h.Dim())
			y := make([]float64, h.Dim())
			if err := so.Apply(y, x); err != nil {
				t.Fatal(err)
			}
			so.Release()
			outs = append(outs, y)
		}
		if prefactor {
			stats := op.OpCacheStats()
			if stats.Hits != uint64(len(taus)) {
				t.Fatalf("prefactored run: want %d cache hits, got %+v", len(taus), stats)
			}
		}
		return outs
	}

	plain := build(false)
	cached := build(true)
	for i := range plain {
		for j := range plain[i] {
			if plain[i][j] != cached[i][j] {
				t.Fatalf("shift %d: cached apply differs at %d: %v vs %v", i, j, plain[i][j], cached[i][j])
			}
		}
	}
}

// TestHalfPathGating covers the dispatch matrix: non-reciprocal models
// stay on the full path under HalfAuto, HalfOff disables the half path on
// reciprocal models, and a near-reciprocal model flips with HalfTol.
func TestHalfPathGating(t *testing.T) {
	nonrec := testModel(t, 35, 3, 18, 1.05)
	op, err := New(nonrec, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	if op.Half() != nil {
		t.Fatal("half path engaged on a non-reciprocal model")
	}
	if th := op.SweepTheta(2e9, 1e8); th != complex(0, 2e9) {
		t.Fatalf("full-path SweepTheta = %v", th)
	}

	rec := reciprocalModel(t, 36, 2, 12, 1.05)
	op, err = NewWith(rec, Scattering, NewOptions{Half: HalfOff})
	if err != nil {
		t.Fatal(err)
	}
	if op.Half() != nil {
		t.Fatal("HalfOff still engaged the half path")
	}

	// Perturb one residue: exact detection must fail, tolerant must pass.
	pert := rec.Clone()
	pert.Cols[0].C.Set(1, 0, pert.Cols[0].C.At(1, 0)*(1+1e-12))
	op, err = New(pert, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	if op.Half() != nil {
		t.Fatal("bit-perturbed model must not pass exact detection")
	}
	op, err = NewWith(pert, Scattering, NewOptions{Half: HalfAuto, HalfTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if op.Half() == nil {
		t.Fatal("HalfTol=1e-9 should admit a 1e-12 perturbation")
	}
	if th := op.SweepTheta(2e9, 1e8); th != complex(-4e18, 0) {
		t.Fatalf("half-path SweepTheta = %v", th)
	}
	// Near-origin disks must route to the full path even on a half-capable
	// operator: 1.6e9 ≥ HalfSafeFraction·2e9.
	if th := op.SweepTheta(2e9, 1.6e9); th != complex(0, 2e9) {
		t.Fatalf("unsafe disk routed to half path: %v", th)
	}
	if op.HalfRouted(0, 0) {
		t.Fatal("ω=0 must never route to the half path")
	}
}
