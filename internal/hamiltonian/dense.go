package hamiltonian

import (
	"math"
	"sort"

	"repro/internal/mat"
)

// Dense assembles the full 2n×2n Hamiltonian matrix (paper Eq. 5). Intended
// for tests and the O(n³) full-eigensolution baseline; cost O(n²·p).
func (op *Op) Dense() *mat.Dense {
	n := op.N
	dim := 2 * n
	m := mat.NewDense(dim, dim)
	// K₀ = blkdiag(A, −Aᵀ).
	a := op.Model.DenseA()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, a.At(i, j))
			m.Set(n+i, n+j, -a.At(j, i))
		}
	}
	// M += U·W·V via dense blocks.
	b := op.Model.DenseB()
	c := op.Model.DenseC()
	p := op.P
	// U = [B 0; 0 Cᵀ] (2n×2p), V = [C 0; 0 Bᵀ] (2p×2n).
	u := mat.NewDense(dim, 2*p)
	v := mat.NewDense(2*p, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			u.Set(i, j, b.At(i, j))
			u.Set(n+i, p+j, c.At(j, i))
			v.Set(j, i, c.At(j, i))
			v.Set(p+j, n+i, b.At(i, j))
		}
	}
	uwv := u.Mul(op.w).Mul(v)
	for i := range m.Data {
		m.Data[i] += uwv.Data[i]
	}
	return m
}

// ImagEig is one purely imaginary Hamiltonian eigenvalue jω (ω ≥ 0).
type ImagEig struct {
	Omega float64 // the crossing frequency ω ≥ 0
}

// FullImagEigs computes all purely imaginary eigenvalues of M with a dense
// O(n³) eigensolution (the baseline the paper wants to avoid), returning
// the non-negative crossing frequencies sorted ascending. relTol decides
// how close to the axis an eigenvalue must be, relative to the spectrum
// scale; pass 0 for the default 1e-8.
func (op *Op) FullImagEigs(relTol float64) ([]float64, error) {
	if relTol == 0 {
		relTol = 1e-8
	}
	// Rescale to a dimensionless frequency so the dense QR iteration works
	// on O(1) entries; eigenvalues scale back linearly.
	w0 := op.Model.MaxPoleMagnitude()
	if w0 == 0 {
		w0 = 1
	}
	scaledOp, err := New(op.Model.FrequencyScaled(w0), op.Rep)
	if err != nil {
		return nil, err
	}
	vals, err := mat.EigValues(scaledOp.Dense())
	if err != nil {
		return nil, err
	}
	var scale float64
	for _, v := range vals {
		if a := math.Hypot(real(v), imag(v)); a > scale {
			scale = a
		}
	}
	// Coarse near-axis window, then structured refinement on the original
	// (unscaled) operator: dense QR eigenvalues of the non-normal M carry
	// errors well above machine epsilon, so classification must happen on
	// polished values.
	window := math.Max(relTol, 1e-4) * scale
	floor := 1e-9 * scale * w0
	var out []float64
	for _, v := range vals {
		if math.Abs(real(v)) > window || imag(v) < 0 {
			continue
		}
		refined, resid, err := op.RefineEig(v*complex(w0, 0), 6)
		if err != nil {
			continue
		}
		w := math.Abs(imag(refined))
		if ClassifyImag(refined, 1e-12, floor) {
			out = append(out, w)
			continue
		}
		if !ClassifyImagWithResidual(refined, resid, relTol, floor) {
			continue
		}
		if ok, err := op.IsCrossing(w, 0); err == nil && ok {
			out = append(out, w)
		}
	}
	sort.Float64s(out)
	// Deduplicate: distinct dense eigenvalues can refine to the same
	// crossing when the QR output was inaccurate.
	dedup := out[:0]
	for _, w := range out {
		if len(dedup) > 0 && w-dedup[len(dedup)-1] <= 3e-9*scale*w0 {
			continue
		}
		dedup = append(dedup, w)
	}
	return dedup, nil
}
