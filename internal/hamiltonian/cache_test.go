package hamiltonian

import (
	"math/rand"
	"sync"
	"testing"
)

// applyBits runs one ShiftOp apply on a fixed vector and returns the raw
// output — the bit-level fingerprint the cache equivalence tests compare.
func applyBits(t *testing.T, so *ShiftOp, x []complex128) []complex128 {
	t.Helper()
	y := make([]complex128, len(x))
	if err := so.Apply(y, x); err != nil {
		t.Fatal(err)
	}
	return y
}

func sameBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShiftCacheHitBitIdentical: a cached ShiftInvert must hand back an
// operator whose applies are bit-for-bit those of the uncached path, and
// the cache counters must reflect exactly one factorization.
func TestShiftCacheHitBitIdentical(t *testing.T) {
	m := testModel(t, 21, 3, 18, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	theta := complex(0, 0.4*m.MaxPoleMagnitude())
	rng := rand.New(rand.NewSource(5))
	x := randCVec(rng, op.Dim())

	// Uncached reference first (no cache attached yet).
	ref, err := op.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	want := applyBits(t, ref, x)
	ref.Release()

	cache := NewShiftCache(8)
	op.SetShiftCache(cache)
	for trial := 0; trial < 3; trial++ {
		so, err := op.ShiftInvert(theta)
		if err != nil {
			t.Fatal(err)
		}
		if got := applyBits(t, so, x); !sameBits(got, want) {
			t.Fatalf("trial %d: cached apply differs from uncached apply", trial)
		}
		so.Release()
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss + 2 hits", st)
	}
	if ost := op.OpCacheStats(); ost.Misses != 1 || ost.Hits != 2 {
		t.Fatalf("per-op stats = %+v, want 1 miss + 2 hits", ost)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

// TestShiftCacheTinyCapacityEvicts: a capacity-1 cache cycling through
// several shifts must evict, stay at capacity, and still produce
// bit-identical applies on every shift (evicted or not).
func TestShiftCacheTinyCapacityEvicts(t *testing.T) {
	m := testModel(t, 22, 2, 14, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	wmax := m.MaxPoleMagnitude()
	thetas := []complex128{
		complex(0, 0.2*wmax), complex(0, 0.5*wmax), complex(0, 0.9*wmax),
	}
	rng := rand.New(rand.NewSource(6))
	x := randCVec(rng, op.Dim())

	want := make([][]complex128, len(thetas))
	for i, th := range thetas {
		so, err := op.ShiftInvert(th)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = applyBits(t, so, x)
		so.Release()
	}

	cache := NewShiftCache(1)
	op.SetShiftCache(cache)
	for round := 0; round < 2; round++ {
		for i, th := range thetas {
			so, err := op.ShiftInvert(th)
			if err != nil {
				t.Fatal(err)
			}
			if got := applyBits(t, so, x); !sameBits(got, want[i]) {
				t.Fatalf("round %d shift %d: apply differs after eviction churn", round, i)
			}
			so.Release()
			if n := cache.Len(); n > 1 {
				t.Fatalf("capacity-1 cache holds %d entries after release", n)
			}
		}
	}
	st := cache.Stats()
	// Every access misses (each shift evicts the previous one), so all 6 are
	// misses and 5 of the inserts evicted a predecessor.
	if st.Misses != 6 || st.Hits != 0 || st.Evictions != 5 {
		t.Fatalf("stats = %+v, want 6 misses / 0 hits / 5 evictions", st)
	}
}

// TestShiftCacheHitZeroAllocs: after the shift-op pool is warm, a cache hit
// (ShiftInvert + Release) performs zero allocations — the factored state is
// shared and the ShiftOp shell is pooled.
func TestShiftCacheHitZeroAllocs(t *testing.T) {
	m := testModel(t, 23, 4, 24, 0.95)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	op.EnsureShiftCache(4)
	theta := complex(0, 0.5*m.MaxPoleMagnitude())
	// Warm: first call factors (miss) and seeds the shiftPool on Release.
	so, err := op.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	so.Release()
	if avg := testing.AllocsPerRun(100, func() {
		so, err := op.ShiftInvert(theta)
		if err != nil {
			t.Fatal(err)
		}
		so.Release()
	}); avg != 0 {
		t.Fatalf("cache hit allocates %.1f objects per ShiftInvert, want 0", avg)
	}
}

// TestShiftCacheEpochInvalidation: bumping the model's kernel epoch must
// stop every stale entry from matching — post-invalidation solves factor
// fresh state bit-identical to a fresh operator on the mutated model.
func TestShiftCacheEpochInvalidation(t *testing.T) {
	base := testModel(t, 24, 2, 12, 1.05)
	op, err := New(base, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewShiftCache(8)
	op.SetShiftCache(cache)
	theta := complex(0, 0.6*base.MaxPoleMagnitude())
	rng := rand.New(rand.NewSource(7))
	x := randCVec(rng, op.Dim())

	so, err := op.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	stale := applyBits(t, so, x)
	so.Release()

	// Mutate the operator's model in place — the enforcement pattern — and
	// invalidate. Op.Model is the balanced clone New made, so the mutation
	// must target it, not `base`.
	work := op.Model
	work.Cols[0].C.Set(0, 0, work.Cols[0].C.At(0, 0)*1.01)
	work.InvalidateKernels()

	so, err = op.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	got := applyBits(t, so, x)
	so.Release()
	if sameBits(got, stale) {
		t.Fatal("post-invalidation apply equals stale apply: cache served superseded kernels")
	}
	// Reference: an uncached operator sharing the mutated realization.
	ref := &Op{Model: work, Rep: op.Rep, N: op.N, P: op.P, w: op.w, id: opIDs.Add(1)}
	rso, err := ref.ShiftInvert(theta)
	if err != nil {
		t.Fatal(err)
	}
	want := applyBits(t, rso, x)
	rso.Release()
	if !sameBits(got, want) {
		t.Fatal("post-invalidation apply differs from a fresh factorization of the mutated model")
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses (stale entry must not match)", st)
	}
}

// TestShiftCacheConcurrentInvalidation hammers one cached operator from
// many goroutines — ShiftInvert/Apply/Release interleaved with epoch bumps
// — and relies on -race to catch lifecycle races (pinned-entry eviction,
// publish/acquire, epoch reads). Results aren't compared here (epoch flips
// mid-flight make them timing-dependent by design); correctness of values
// is covered by the sequential tests above.
func TestShiftCacheConcurrentInvalidation(t *testing.T) {
	m := testModel(t, 25, 2, 12, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	op.SetShiftCache(NewShiftCache(2)) // tiny: force eviction under load
	wmax := m.MaxPoleMagnitude()
	thetas := []complex128{
		complex(0, 0.2*wmax), complex(0, 0.45*wmax),
		complex(0, 0.7*wmax), complex(0, 0.95*wmax),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			x := randCVec(rng, op.Dim())
			y := make([]complex128, op.Dim())
			for iter := 0; iter < 40; iter++ {
				so, err := op.ShiftInvert(thetas[(g+iter)%len(thetas)])
				if err != nil {
					t.Error(err)
					return
				}
				if err := so.Apply(y, x); err != nil {
					t.Error(err)
					so.Release()
					return
				}
				so.Release()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		// Only the epoch moves concurrently; mutating coefficients here would
		// race with buildPacked in the solver goroutines.
		defer wg.Done()
		for i := 0; i < 20; i++ {
			op.Model.InvalidateKernels()
		}
	}()
	wg.Wait()
}

// TestPrefactorShiftsBitIdentical: factors published by the batched
// prefactor path must be indistinguishable from lazily factored ones, be
// counted as hits when consumed, and skip pole-hitting shifts without
// poisoning the rest.
func TestPrefactorShiftsBitIdentical(t *testing.T) {
	m := testModel(t, 26, 3, 16, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	wmax := m.MaxPoleMagnitude()
	thetas := []complex128{
		complex(0, 0.15*wmax), complex(0, 0.4*wmax),
		complex(0, 0.4*wmax), // duplicate: must be deduped, not double-factored
		complex(0, 0.8*wmax),
	}
	rng := rand.New(rand.NewSource(8))
	x := randCVec(rng, op.Dim())

	// Uncached references.
	want := make(map[complex128][]complex128)
	for _, th := range thetas {
		if _, ok := want[th]; ok {
			continue
		}
		so, err := op.ShiftInvert(th)
		if err != nil {
			t.Fatal(err)
		}
		want[th] = applyBits(t, so, x)
		so.Release()
	}

	cache := NewShiftCache(8)
	op.SetShiftCache(cache)
	op.PrefactorShifts(thetas)
	if n := cache.Len(); n != 3 {
		t.Fatalf("prefactor published %d entries, want 3 (deduped)", n)
	}
	if st := cache.Stats(); st.Misses != 0 {
		t.Fatalf("prefactor counted %d misses; published factors must not show up as solve misses", st.Misses)
	}
	for _, th := range thetas {
		so, err := op.ShiftInvert(th)
		if err != nil {
			t.Fatal(err)
		}
		if got := applyBits(t, so, x); !sameBits(got, want[th]) {
			t.Fatalf("shift %v: prefactored apply differs from uncached apply", th)
		}
		so.Release()
	}
	if st := cache.Stats(); st.Hits != uint64(len(thetas)) || st.Misses != 0 {
		t.Fatalf("stats = %+v, want %d hits / 0 misses", st, len(thetas))
	}

	// Prefactoring again is a no-op (everything resident).
	op.PrefactorShifts(thetas)
	if n := cache.Len(); n != 3 {
		t.Fatalf("re-prefactor grew the cache to %d entries", n)
	}
}
