package hamiltonian

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mat"
)

// Half-size Hamiltonian path for reciprocal (symmetric) macromodels.
//
// A reciprocal model (H(s) = H(s)ᵀ) admits a symmetric state similarity T
// with Aᵀ = T·A·T⁻¹ and Cᵀ = T·B. Conjugating the Hamiltonian
// M = [A − B·W₁₁·C …] by blkdiag(I, T⁻¹) and then by the half-sum/half-
// difference similarity [I I; I −I]/2 turns it into an anti-block-diagonal
// matrix [0, P̃; Q̃, 0] with
//
//	P̃ = A + B·Wp·C,  Q̃ = A + B·Wq·C,
//
// where the p×p couplings are representation-dependent:
//
//	scattering: Wp = −(I+D)⁻¹, Wq = (I−D)⁻¹
//	immittance: Wp = 0,        Wq = −D⁻¹
//
// (T itself drops out of the final formulas; only its existence is used).
// Consequently spec(M)² = spec(N) for the n×n product
//
//	N = Q̃·P̃ = A² + U·V,  U = [A·B | B],  V = [Wp·C ; Wq·(C·A + (C·B)·Wp·C)]
//
// and a purely imaginary Hamiltonian eigenvalue λ = jω corresponds to the
// real negative eigenvalue μ = −ω² of N. The multi-shift sweep can
// therefore run shift-invert Arnoldi on (N − τI)⁻¹ with τ = −ω²: same
// crossing semantics, half the vector length — which halves the dominant
// orthogonalization cost of every sweep — and an SMW setup of the same
// O(n·p) shape built from the squared-A kernels in statespace.
//
// Moreover τ and N are both REAL, so the whole iteration runs in real
// arithmetic: real Krylov vectors (arnoldi.SingleShiftReal), real SMW
// capacitance with a real LU, real applies. Against a complex iteration on
// the same operator that halves the flops and memory traffic again — the
// complex lanes would just carry a redundant copy of the same real data.
//
// The λ ↔ μ mapping (shift, radius, residual) lives in core, which owns
// the sweep geometry; this file owns the operator. Refinement, crossing
// arbitration and ω_max estimation stay on the full-size operator — the
// half path accelerates only the sweep.

// HalfMode selects whether the half-size reciprocal path may be used.
type HalfMode int

const (
	// HalfAuto (default) uses the half-size path exactly when reciprocity
	// detection succeeds on the source model (exact, or within
	// NewOptions.HalfTol).
	HalfAuto HalfMode = iota
	// HalfOff always runs the full-size 2n×2n sweep.
	HalfOff
	// HalfForce asserts reciprocity without detection — the caller
	// guarantees H = Hᵀ. Forcing a non-reciprocal model produces wrong
	// sweeps; the arbiter may mask false positives but missed crossings
	// are unrecoverable.
	HalfForce
)

// String names the half mode for reports.
func (h HalfMode) String() string {
	switch h {
	case HalfAuto:
		return "auto"
	case HalfOff:
		return "off"
	case HalfForce:
		return "force"
	default:
		return "unknown"
	}
}

// NewOptions configures operator construction beyond the representation.
type NewOptions struct {
	// Half gates the half-size reciprocal path (default HalfAuto).
	Half HalfMode
	// HalfTol is the reciprocity-detection tolerance under HalfAuto:
	// 0 detects only bit-exact symmetry; a positive value admits models
	// reciprocal up to round-off (see statespace.Model.Reciprocal).
	HalfTol float64
}

// HalfOp is the half-size operator N = A² + U·V of a reciprocal model's
// Hamiltonian, sharing its parent Op's model, shift cache and stats. It is
// read-only after construction and safe for concurrent use; per-shift
// state lives in HalfShiftOp.
type HalfOp struct {
	op   *Op
	n, p int
	// id is this operator's own cache identity: half-path factors and
	// full-path factors of the same Op must never collide in a shared
	// ShiftCache.
	id uint64
	// vt is the coupling V stored transposed (n×2p row-major) so the
	// block-local panel kernels and the V apply stream one contiguous
	// 2p-row per state.
	vt []float64

	shiftPool sync.Pool
	panelPool sync.Pool
}

// newHalfOp precomputes the half-size coupling V from the parent's
// (balanced) model and representation. O(p²·n) one-time work.
func newHalfOp(op *Op) (*HalfOp, error) {
	m := op.Model
	p, n := op.P, op.N
	var wp, wq *mat.Dense
	switch op.Rep {
	case Scattering:
		ipd, err := mat.Inverse(mat.Eye(p).Add(m.D))
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: half path: I+D singular: %w", err)
		}
		imd, err := mat.Inverse(mat.Eye(p).Sub(m.D))
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: half path: I−D singular: %w", err)
		}
		wp = ipd.Scale(-1)
		wq = imd
	case Immittance:
		dinv, err := mat.Inverse(m.D)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: half path: D singular: %w", err)
		}
		wp = mat.NewDense(p, p)
		wq = dinv.Scale(-1)
	default:
		return nil, fmt.Errorf("hamiltonian: unknown representation %v", op.Rep)
	}
	cd := m.DenseC()
	// C·A via the block structure of A, O(n·p).
	ca := mat.NewDense(p, n)
	off := 0
	for k := range m.Cols {
		col := &m.Cols[k]
		for _, b := range col.Blocks {
			if b.Size == 1 {
				for i := 0; i < p; i++ {
					ca.Set(i, off, cd.At(i, off)*b.Sigma)
				}
			} else {
				for i := 0; i < p; i++ {
					c1, c2 := cd.At(i, off), cd.At(i, off+1)
					ca.Set(i, off, c1*b.Sigma-c2*b.Omega)
					ca.Set(i, off+1, c1*b.Omega+c2*b.Sigma)
				}
			}
			off += b.Size
		}
	}
	wpc := wp.Mul(cd) // p×n
	// C·B is p×p and block-local; assembled densely once.
	cb := cd.Mul(m.DenseB())
	row2 := wq.Mul(ca.Add(cb.Mul(wpc)))
	q := 2 * p
	vt := make([]float64, n*q)
	for j := 0; j < n; j++ {
		for i := 0; i < p; i++ {
			vt[j*q+i] = wpc.At(i, j)
			vt[j*q+p+i] = row2.At(i, j)
		}
	}
	return &HalfOp{op: op, n: n, p: p, id: opIDs.Add(1), vt: vt}, nil
}

// Dim returns the half-size dimension n.
func (h *HalfOp) Dim() int { return h.n }

// Op returns the parent full-size operator.
func (h *HalfOp) Op() *Op { return h.op }

// applyV computes t = V·x, t ∈ R^{2p}, streaming vt state-major with one
// fixed accumulation order (deterministic for any caller).
func (h *HalfOp) applyV(t, x []float64) {
	q := 2 * h.p
	for i := 0; i < q; i++ {
		t[i] = 0
	}
	for j := 0; j < h.n; j++ {
		row := h.vt[j*q : (j+1)*q : (j+1)*q]
		xj := x[j]
		for i, v := range row {
			t[i] += v * xj
		}
	}
}

// getHalfPanel returns a pooled 2p×2p capacitance panel buffer.
func (h *HalfOp) getHalfPanel() []float64 {
	if b, ok := h.panelPool.Get().([]float64); ok {
		return b
	}
	return make([]float64, 4*h.p*h.p)
}

// shiftKeyFor keys a half-path factorization: the HalfOp's own identity
// plus the model's kernel epoch, active backend and exact shift bits.
func (h *HalfOp) shiftKeyFor(tau complex128) shiftKey {
	return shiftKey{
		opID:    h.id,
		epoch:   h.op.Model.KernelEpoch(),
		backend: h.op.Model.ActiveBackend(),
		re:      math.Float64bits(real(tau)),
		im:      math.Float64bits(imag(tau)),
	}
}

// ShiftInvert factors (N − τI)⁻¹ via the same SMW identity as the full
// path: Gτ − Gτ·U·(I + V·Gτ·U)⁻¹·V·Gτ with Gτ = (A² − τI)⁻¹ block
// diagonal. The shift τ must be real (the sweep's τ = −ω² always is);
// factorization and applies then run entirely in real arithmetic. The
// attached ShiftCache (the parent Op's) is consulted first; half-path
// entries carry their own operator identity so they never mix with
// full-path factors. Callers must Release the returned operator.
func (h *HalfOp) ShiftInvert(tau complex128) (*HalfShiftOp, error) {
	if imag(tau) != 0 {
		return nil, fmt.Errorf("hamiltonian: half shift %v must be real", tau)
	}
	if c := h.op.cache.Load(); c != nil {
		return c.shiftInvertHalf(h, tau)
	}
	fac, err := h.factorShift(tau)
	if err != nil {
		return nil, err
	}
	return h.newShiftOp(fac, nil), nil
}

// factorShift runs the half-size SMW setup for one shift: the real 2p×2p
// panel V·Gτ·U in one pass over the packed kernels, then capacitance
// assembly and factorization.
func (h *HalfOp) factorShift(tau complex128) (*shiftFactor, error) {
	panel := h.getHalfPanel()
	defer h.panelPool.Put(panel)
	if err := h.op.Model.RResolventA2BPair(panel, h.vt, 2*h.p, real(tau)); err != nil {
		return nil, fmt.Errorf("hamiltonian: half shift %v hits a pole: %w", tau, err)
	}
	return h.assembleFactor(tau, panel)
}

// assembleFactor builds and factors the real cap = I + V·Gτ·U from the
// panel. Shared by the single-shift and batched prefactor paths, which
// hand it bit-identical panels.
func (h *HalfOp) assembleFactor(tau complex128, panel []float64) (*shiftFactor, error) {
	q := 2 * h.p
	capm := mat.NewDense(q, q)
	for i := 0; i < q; i++ {
		copy(capm.Row(i), panel[i*q:(i+1)*q])
		capm.Row(i)[i]++
	}
	f, err := mat.LUFactorInPlace(capm)
	if err != nil {
		return nil, fmt.Errorf("hamiltonian: half shift %v is (numerically) an eigenvalue: %w", tau, err)
	}
	return &shiftFactor{theta: tau, rcap: f}, nil
}

// HalfShiftOp is the half-size shift-invert operator (N − τI)⁻¹ for one
// real shift τ: a shared immutable factor plus private apply scratch. All
// vectors are real. Like ShiftOp it is single-goroutine; concurrent
// HalfShiftOps may share the factorization. Call Release when done.
type HalfShiftOp struct {
	h     *HalfOp
	fac   *shiftFactor
	entry *cacheEntry
	// scratch
	g, gu   []float64 // n
	s, t    []float64 // 2p
	permBuf []float64 // 2p
}

// newShiftOp wraps a factor in a (pooled) HalfShiftOp shell.
func (h *HalfOp) newShiftOp(fac *shiftFactor, entry *cacheEntry) *HalfShiftOp {
	if so, ok := h.shiftPool.Get().(*HalfShiftOp); ok {
		so.fac, so.entry = fac, entry
		return so
	}
	n, q := h.n, 2*h.p
	buf := make([]float64, 2*n+3*q)
	return &HalfShiftOp{
		h:       h,
		fac:     fac,
		entry:   entry,
		g:       buf[:n],
		gu:      buf[n : 2*n],
		s:       buf[2*n : 2*n+q],
		t:       buf[2*n+q : 2*n+2*q],
		permBuf: buf[2*n+2*q:],
	}
}

// Release returns the operator's scratch to the pool and unpins its cache
// entry, mirroring ShiftOp.Release.
func (so *HalfShiftOp) Release() {
	if so == nil {
		return
	}
	if so.entry != nil {
		so.entry.cache.release(so.entry)
		so.entry = nil
	}
	so.fac = nil
	so.h.shiftPool.Put(so)
}

// Theta returns the shift τ (in μ = λ² space).
func (so *HalfShiftOp) Theta() complex128 { return so.fac.theta }

// Dim returns the half-size dimension n.
func (so *HalfShiftOp) Dim() int { return so.h.n }

// Apply computes y = (N − τI)⁻¹·x on real vectors. x and y have length n
// and may alias.
func (so *HalfShiftOp) Apply(y, x []float64) error {
	h := so.h
	n := h.n
	if len(x) != n || len(y) != n {
		panic(fmt.Sprintf("hamiltonian: HalfShiftOp.Apply expects vectors of length %d", n))
	}
	tau := real(so.fac.theta)
	m := h.op.Model
	if err := m.RSolveShiftedA2(so.g, x, tau); err != nil {
		return err
	}
	h.applyV(so.s, so.g)
	so.fac.rcap.SolveIntoScratch(so.s, so.s, so.permBuf)
	m.RApplyABPair(so.gu, so.s[:h.p], so.s[h.p:])
	if err := m.RSolveShiftedA2(so.gu, so.gu, tau); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		y[i] = so.g[i] - so.gu[i]
	}
	return nil
}

// ApplyBase applies the non-inverted half operator: y = N·x = A²·x +
// U·(V·x), letting the Arnoldi layer measure eigenpair residuals in N
// (they map to λ-space error bars in core).
func (so *HalfShiftOp) ApplyBase(y, x []float64) error {
	h := so.h
	m := h.op.Model
	m.RApplyA2(y, x)
	h.applyV(so.t, x)
	m.RApplyABPair(so.gu, so.t[:h.p], so.t[h.p:])
	for i := range y {
		y[i] += so.gu[i]
	}
	return nil
}

// PrefactorShifts factors every half-path shift in taus into the attached
// cache using the batched panel kernel, mirroring Op.PrefactorShifts:
// resident shifts are skipped, failures are left to the solve path, and
// the published factors are bit-identical to lazy ones.
func (h *HalfOp) PrefactorShifts(taus []complex128) {
	c := h.op.cache.Load()
	if c == nil || len(taus) == 0 {
		return
	}
	need := make([]complex128, 0, len(taus))
	keys := make([]shiftKey, 0, len(taus))
	seen := make(map[shiftKey]struct{}, len(taus))
	for _, tau := range taus {
		if imag(tau) != 0 {
			continue // half shifts are real by construction; leave odd ones to the solve path's error
		}
		k := h.shiftKeyFor(tau)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		c.mu.Lock()
		_, resident := c.entries[k]
		c.mu.Unlock()
		if resident {
			continue
		}
		need = append(need, tau)
		keys = append(keys, k)
	}
	if len(need) == 0 {
		return
	}
	q := 2 * h.p
	sz := q * q
	panels := make([]float64, len(need)*sz)
	errs := make([]error, len(need))
	rtaus := make([]float64, len(need))
	for i, tau := range need {
		rtaus[i] = real(tau)
	}
	h.op.Model.RResolventA2BPairMulti(panels, h.vt, q, rtaus, errs)
	for i, tau := range need {
		if errs[i] != nil {
			continue
		}
		fac, err := h.assembleFactor(tau, panels[i*sz:(i+1)*sz])
		if err != nil {
			continue
		}
		c.publish(keys[i], fac)
	}
}
