package hamiltonian

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestRefineEigPolishesPerturbedEigenvalue(t *testing.T) {
	m := testModel(t, 61, 2, 20, 1.06)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	crossings, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) == 0 {
		t.Skip("model came out passive")
	}
	truth := complex(0, crossings[0])
	// Perturb by 1e-4 relative and refine back.
	approx := truth * complex(1+1e-4, 0)
	refined, resid, err := op.RefineEig(approx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(refined-truth) > 1e-7*cmplx.Abs(truth) {
		t.Fatalf("refined %v, want %v", refined, truth)
	}
	if resid > 1e-6*cmplx.Abs(truth) {
		t.Fatalf("residual %g too large", resid)
	}
	// The refined eigenvalue must be recognized as imaginary.
	if !ClassifyImag(refined, 1e-6, 1) {
		t.Fatalf("refined crossing %v not classified imaginary", refined)
	}
}

func TestClassifyImag(t *testing.T) {
	if !ClassifyImag(complex(1e-8, 1), 1e-6, 0) {
		t.Fatal("near-axis eigenvalue rejected")
	}
	if ClassifyImag(complex(1e-3, 1), 1e-6, 0) {
		t.Fatal("off-axis eigenvalue accepted")
	}
	// The floor protects tiny eigenvalues near the origin.
	if !ClassifyImag(complex(1e-9, 0), 1e-6, 1e-2) {
		t.Fatal("floor not applied")
	}
}

func TestRefineEigResidualReportsQuality(t *testing.T) {
	// Refining from a point FAR from any eigenvalue still returns the
	// nearest eigenvalue with a small residual (inverse iteration pulls in).
	m := testModel(t, 62, 2, 12, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	// A shift in the middle of nowhere on the positive real axis.
	lambda, resid, err := op.RefineEig(complex(m.MaxPoleMagnitude(), 0), 10)
	if err != nil {
		t.Fatal(err)
	}
	// The residual is the backward error: a small value certifies that
	// (λ, v) is an eigenpair of a nearby matrix. (The raw dense spectrum
	// is NOT a valid reference here — on physical scales its own error
	// exceeds the refinement accuracy.)
	// Backward error is relative to ‖M‖, which is far larger than the pole
	// scale here (the low-rank UWV part carries CᵀS⁻¹C ~ pole² entries).
	scale := m.MaxPoleMagnitude()
	if resid > 1e-5*scale {
		t.Fatalf("residual %g for refined value %v", resid, lambda)
	}
	if math.IsNaN(cmplx.Abs(lambda)) {
		t.Fatal("NaN eigenvalue")
	}
}

func TestDenseMatchesStructuredDim(t *testing.T) {
	m := testModel(t, 63, 3, 9, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	d := op.Dense()
	if d.Rows != op.Dim() || d.Cols != op.Dim() {
		t.Fatalf("dense dims %dx%d, want %d", d.Rows, d.Cols, op.Dim())
	}
	if op.Dim() != 2*m.Order() {
		t.Fatal("Dim != 2n")
	}
}

func TestShiftOpDim(t *testing.T) {
	m := testModel(t, 64, 2, 8, 1.05)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	so, err := op.ShiftInvert(complex(0, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if so.Dim() != op.Dim() {
		t.Fatal("ShiftOp.Dim mismatch")
	}
	if so.Theta() != complex(0, 1e9) {
		t.Fatal("Theta mismatch")
	}
}

func TestFullImagEigsEvenCount(t *testing.T) {
	// With σ(D) < 1, σ_max starts below 1 at ω=0± and ends below 1 at
	// ω→∞, so crossings come in pairs.
	m := testModel(t, 65, 2, 18, 1.07)
	op, err := New(m, Scattering)
	if err != nil {
		t.Fatal(err)
	}
	crossings, err := op.FullImagEigs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings)%2 != 0 {
		t.Fatalf("odd crossing count %d: %v", len(crossings), crossings)
	}
	for i := 1; i < len(crossings); i++ {
		if crossings[i] < crossings[i-1] {
			t.Fatal("crossings not sorted")
		}
	}
}
