// Package hamiltonian builds the Hamiltonian matrix associated with a
// scattering (or immittance) state-space macromodel (paper Eq. 5) and
// provides fast structured operators on it:
//
//   - Apply:       y = M·x           in O(n·p)
//   - ShiftInvert: y = (M − ϑI)⁻¹·x  in O(n·p) per apply after an
//     O(n·p²) per-shift setup (Sherman–Morrison–Woodbury, paper Eq. 6)
//
// The purely imaginary eigenvalues of M are the frequencies where singular
// values of H(jω) cross the unit threshold (scattering) or where the
// Hermitian part of H(jω) becomes singular (immittance), so they fully
// characterize passivity.
package hamiltonian

import (
	"errors"
	"fmt"

	"repro/internal/mat"
	"repro/internal/statespace"
)

// Representation selects which passivity test the Hamiltonian encodes.
type Representation int

const (
	// Scattering tests σ_i(H(jω)) ≤ 1 (paper Eq. 3–5). Requires σ_max(D) < 1.
	Scattering Representation = iota
	// Immittance tests λ_min(H(jω) + H(jω)ᴴ) ≥ 0 for admittance/impedance
	// representations. Requires D + Dᵀ nonsingular.
	Immittance
)

func (r Representation) String() string {
	switch r {
	case Scattering:
		return "scattering"
	case Immittance:
		return "immittance"
	default:
		return fmt.Sprintf("Representation(%d)", int(r))
	}
}

// ErrNotAsymptoticallyPassive is returned when the direct-coupling matrix D
// violates the strict asymptotic passivity precondition (paper Eq. 4).
var ErrNotAsymptoticallyPassive = errors.New("hamiltonian: D violates strict asymptotic passivity (σ_max(D) ≥ 1)")

// Op is the structured Hamiltonian operator M = K₀ + U·W·V with
// K₀ = blkdiag(A, −Aᵀ), U = [B 0; 0 Cᵀ], V = [C 0; 0 Bᵀ] and a 2p×2p
// coupling W determined by the representation. Read-only after
// construction; safe for concurrent use.
type Op struct {
	Model *statespace.Model
	Rep   Representation
	N     int        // dynamic order n (M is 2n×2n)
	P     int        // ports
	w     *mat.Dense // 2p×2p coupling
}

// New builds the Hamiltonian operator for the model. The operator works on
// a state-balanced copy of the realization (statespace.Model.Balanced):
// the transfer function — and therefore the Hamiltonian spectrum — is
// unchanged, but the B/C scale disparity of physical macromodels, which
// would otherwise make projected eigenproblems hopelessly ill conditioned,
// is removed.
func New(m *statespace.Model, rep Representation) (*Op, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m = m.Balanced()
	p := m.P
	var w *mat.Dense
	switch rep {
	case Scattering:
		// R = DᵀD − I, S = DDᵀ − I,
		// W = [ −R⁻¹Dᵀ  −R⁻¹ ]
		//     [  S⁻¹     DR⁻¹ ]
		dn, err := mat.Norm2Mat(m.D)
		if err != nil {
			return nil, err
		}
		if dn >= 1 {
			return nil, ErrNotAsymptoticallyPassive
		}
		d := m.D
		r := d.T().Mul(d).Sub(mat.Eye(p))
		s := d.Mul(d.T()).Sub(mat.Eye(p))
		rinv, err := mat.Inverse(r)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: R singular: %w", err)
		}
		sinv, err := mat.Inverse(s)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: S singular: %w", err)
		}
		w = mat.NewDense(2*p, 2*p)
		setBlock(w, 0, 0, rinv.Mul(d.T()).Scale(-1))
		setBlock(w, 0, p, rinv.Scale(-1))
		setBlock(w, p, 0, sinv)
		setBlock(w, p, p, d.Mul(rinv))
	case Immittance:
		// Q = D + Dᵀ,
		// W = [ −Q⁻¹  −Q⁻¹ ]
		//     [  Q⁻¹   Q⁻¹ ]
		q := m.D.Add(m.D.T())
		qinv, err := mat.Inverse(q)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: D+Dᵀ singular: %w", err)
		}
		w = mat.NewDense(2*p, 2*p)
		setBlock(w, 0, 0, qinv.Scale(-1))
		setBlock(w, 0, p, qinv.Scale(-1))
		setBlock(w, p, 0, qinv)
		setBlock(w, p, p, qinv)
	default:
		return nil, fmt.Errorf("hamiltonian: unknown representation %v", rep)
	}
	return &Op{Model: m, Rep: rep, N: m.Order(), P: p, w: w}, nil
}

func setBlock(dst *mat.Dense, i0, j0 int, b *mat.Dense) {
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			dst.Set(i0+i, j0+j, b.At(i, j))
		}
	}
}

// Dim returns the dimension 2n of the Hamiltonian matrix.
func (op *Op) Dim() int { return 2 * op.N }

// applyV computes t = V·x = [C·x₁; Bᵀ·x₂], t ∈ C^{2p}.
func (op *Op) applyV(t, x []complex128) {
	n, p := op.N, op.P
	op.Model.CApplyC(t[:p], x[:n])
	op.Model.CApplyBT(t[p:2*p], x[n:2*n])
}

// applyU computes y = U·s = [B·s₁; Cᵀ·s₂], y ∈ C^{2n}.
func (op *Op) applyU(y, s []complex128) {
	n, p := op.N, op.P
	op.Model.CApplyB(y[:n], s[:p])
	op.Model.CApplyCT(y[n:2*n], s[p:2*p])
}

// applyW computes t ← W·t on a 2p complex vector (W is real).
func (op *Op) applyW(dst, t []complex128) {
	p2 := 2 * op.P
	for i := 0; i < p2; i++ {
		var acc complex128
		row := op.w.Row(i)
		for j := 0; j < p2; j++ {
			acc += complex(row[j], 0) * t[j]
		}
		dst[i] = acc
	}
}

// Apply computes y = M·x in O(n·p) without forming M. x and y have length
// 2n and must not alias.
func (op *Op) Apply(y, x []complex128) {
	n := op.N
	if len(x) != 2*n || len(y) != 2*n {
		panic(fmt.Sprintf("hamiltonian: Apply expects vectors of length %d", 2*n))
	}
	// y = K₀·x.
	op.Model.CApplyA(y[:n], x[:n])
	op.Model.CApplyAT(y[n:2*n], x[n:2*n])
	for i := n; i < 2*n; i++ {
		y[i] = -y[i]
	}
	// y += U·W·V·x.
	p2 := 2 * op.P
	t := make([]complex128, p2)
	wt := make([]complex128, p2)
	u := make([]complex128, 2*n)
	op.applyV(t, x)
	op.applyW(wt, t)
	op.applyU(u, wt)
	for i := range y {
		y[i] += u[i]
	}
}

// ShiftOp is a factored shift-invert operator (M − ϑI)⁻¹ for one shift ϑ.
// Each apply costs O(n·p). Not safe for concurrent use (scratch buffers);
// create one per goroutine.
type ShiftOp struct {
	op    *Op
	theta complex128
	cap   *mat.CLU // factored (I + W·V·G·U), 2p×2p
	// scratch
	g, gu []complex128 // 2n
	t, s  []complex128 // 2p
}

// ShiftInvert factors (M − ϑI)⁻¹ using the Sherman–Morrison–Woodbury form
//
//	(K₀ − ϑI + UWV)⁻¹ = G − G·U·(I + W·V·G·U)⁻¹·W·V·G,
//	G = blkdiag((A−ϑI)⁻¹, (−Aᵀ−ϑI)⁻¹)
//
// which is algebraically equivalent to paper Eq. 6 but does not require W
// to be invertible. Setup is O(n·p²). Fails with ErrSingular when ϑ
// coincides with an eigenvalue of A/−Aᵀ or of M itself.
func (op *Op) ShiftInvert(theta complex128) (*ShiftOp, error) {
	n, p := op.N, op.P
	p2 := 2 * p
	so := &ShiftOp{
		op:    op,
		theta: theta,
		g:     make([]complex128, 2*n),
		gu:    make([]complex128, 2*n),
		t:     make([]complex128, p2),
		s:     make([]complex128, p2),
	}
	// Build V·G·U column by column (2p columns, O(n·p) each).
	vgu := mat.NewCDense(p2, p2)
	e := make([]complex128, p2)
	u := make([]complex128, 2*n)
	g := make([]complex128, 2*n)
	t := make([]complex128, p2)
	for j := 0; j < p2; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		op.applyU(u, e)
		if err := so.applyG(g, u); err != nil {
			return nil, err
		}
		op.applyV(t, g)
		for i := 0; i < p2; i++ {
			vgu.Set(i, j, t[i])
		}
	}
	// cap = I + W·(V·G·U).
	capm := mat.NewCDense(p2, p2)
	for i := 0; i < p2; i++ {
		row := op.w.Row(i)
		for j := 0; j < p2; j++ {
			var acc complex128
			for k := 0; k < p2; k++ {
				acc += complex(row[k], 0) * vgu.At(k, j)
			}
			if i == j {
				acc++
			}
			capm.Set(i, j, acc)
		}
	}
	f, err := mat.CLUFactor(capm)
	if err != nil {
		return nil, fmt.Errorf("hamiltonian: shift %v is (numerically) an eigenvalue: %w", theta, err)
	}
	so.cap = f
	return so, nil
}

// applyG computes y = G·x = [(A−ϑI)⁻¹x₁; (−Aᵀ−ϑI)⁻¹x₂] in O(n).
func (so *ShiftOp) applyG(y, x []complex128) error {
	n := so.op.N
	if err := so.op.Model.CSolveShiftedA(y[:n], x[:n], so.theta); err != nil {
		return err
	}
	// (−Aᵀ − ϑI)⁻¹ = −(Aᵀ + ϑI)⁻¹ = −(Aᵀ − (−ϑ)I)⁻¹.
	if err := so.op.Model.CSolveShiftedAT(y[n:2*n], x[n:2*n], -so.theta); err != nil {
		return err
	}
	for i := n; i < 2*n; i++ {
		y[i] = -y[i]
	}
	return nil
}

// Theta returns the shift.
func (so *ShiftOp) Theta() complex128 { return so.theta }

// Dim returns the dimension 2n of the underlying Hamiltonian.
func (so *ShiftOp) Dim() int { return 2 * so.op.N }

// ApplyBase applies the original (non-inverted) Hamiltonian: y = M·x. It
// lets the Arnoldi layer measure eigenpair residuals in M itself
// (arnoldi.BaseOperator).
func (so *ShiftOp) ApplyBase(y, x []complex128) error {
	so.op.Apply(y, x)
	return nil
}

// Apply computes y = (M − ϑI)⁻¹·x. x and y have length 2n and may alias.
func (so *ShiftOp) Apply(y, x []complex128) error {
	op := so.op
	n := op.N
	if len(x) != 2*n || len(y) != 2*n {
		panic(fmt.Sprintf("hamiltonian: ShiftOp.Apply expects vectors of length %d", 2*n))
	}
	if err := so.applyG(so.g, x); err != nil {
		return err
	}
	op.applyV(so.t, so.g)
	op.applyW(so.s, so.t)
	so.cap.SolveInto(so.s, so.s)
	op.applyU(so.gu, so.s)
	if err := so.applyG(so.gu, so.gu); err != nil {
		return err
	}
	for i := 0; i < 2*n; i++ {
		y[i] = so.g[i] - so.gu[i]
	}
	return nil
}
