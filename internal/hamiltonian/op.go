// Package hamiltonian builds the Hamiltonian matrix associated with a
// scattering (or immittance) state-space macromodel (paper Eq. 5) and
// provides fast structured operators on it:
//
//   - Apply:       y = M·x           in O(n·p)
//   - ShiftInvert: y = (M − ϑI)⁻¹·x  in O(n·p) per apply after an
//     O(n·p²) per-shift setup (Sherman–Morrison–Woodbury, paper Eq. 6)
//
// The purely imaginary eigenvalues of M are the frequencies where singular
// values of H(jω) cross the unit threshold (scattering) or where the
// Hermitian part of H(jω) becomes singular (immittance), so they fully
// characterize passivity.
//
// Invariants: an Op never mutates its model; RefineEig and IsCrossing are
// deterministic (fixed internal start vectors), so refining the same
// eigenvalue twice yields the same bits — the canonical-polish guarantee
// in core builds on this.
//
// Concurrency: an Op is read-only after New and safe for concurrent use —
// Apply draws its scratch from a sync.Pool and ShiftInvert only reads the
// packed kernels. A ShiftOp carries per-shift factorization scratch and
// must stay confined to one goroutine at a time (each pool task builds or
// owns its own).
package hamiltonian

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/statespace"
)

// Representation selects which passivity test the Hamiltonian encodes.
type Representation int

const (
	// Scattering tests σ_i(H(jω)) ≤ 1 (paper Eq. 3–5). Requires σ_max(D) < 1.
	Scattering Representation = iota
	// Immittance tests λ_min(H(jω) + H(jω)ᴴ) ≥ 0 for admittance/impedance
	// representations. Requires D + Dᵀ nonsingular.
	Immittance
)

// String names the representation for logs and error messages.
func (r Representation) String() string {
	switch r {
	case Scattering:
		return "scattering"
	case Immittance:
		return "immittance"
	default:
		return fmt.Sprintf("Representation(%d)", int(r))
	}
}

// ErrNotAsymptoticallyPassive is returned when the direct-coupling matrix D
// violates the strict asymptotic passivity precondition (paper Eq. 4).
var ErrNotAsymptoticallyPassive = errors.New("hamiltonian: D violates strict asymptotic passivity (σ_max(D) ≥ 1)")

// Op is the structured Hamiltonian operator M = K₀ + U·W·V with
// K₀ = blkdiag(A, −Aᵀ), U = [B 0; 0 Cᵀ], V = [C 0; 0 Bᵀ] and a 2p×2p
// coupling W determined by the representation. Read-only after
// construction; safe for concurrent use.
type Op struct {
	Model *statespace.Model
	Rep   Representation
	N     int        // dynamic order n (M is 2n×2n)
	P     int        // ports
	w     *mat.Dense // 2p×2p coupling

	// id is a process-unique operator identity. A ShiftCache may serve many
	// Ops (the fleet engine shares one cache across jobs), so cache keys
	// combine id with the model's kernel epoch and the exact shift bits —
	// epoch alone cannot distinguish two different models.
	id uint64

	// half, when non-nil, is the half-size reciprocal sweep operator
	// (spec(M)² on n states instead of spec(M) on 2n). Built by NewWith
	// when the model is reciprocal and the half path is enabled; shares
	// this Op's model, cache and traffic counters.
	half *HalfOp

	// cache, when set, memoizes factored shift state across ShiftInvert
	// calls (see ShiftCache). Atomic so fleet wiring and in-flight solves
	// never race; nil means every ShiftInvert factors from scratch.
	cache atomic.Pointer[ShiftCache]
	// cacheHits/cacheMisses attribute cache traffic to this operator —
	// an engine-wide cache's global counters can't break down per case.
	cacheHits, cacheMisses atomic.Uint64

	// applyPool recycles Apply workspaces (t, wt ∈ C^{2p}, u ∈ C^{2n}) so
	// steady-state Apply calls are allocation-free; ω_max estimation and
	// per-eigenvalue residual checks call Apply thousands of times.
	applyPool sync.Pool
	// panelPool recycles the p×p SMW setup panels of ShiftInvert.
	panelPool sync.Pool
	// shiftPool recycles ShiftOp shells (apply scratch only — the factored
	// state lives in shiftFactor), so a cache hit builds its operator with
	// zero allocations.
	shiftPool sync.Pool
}

// opIDs hands out process-unique Op identities for cache keying.
var opIDs atomic.Uint64

type applyScratch struct{ t, wt, u []complex128 }

type smwPanels struct{ x1, x2 []complex128 }

func (op *Op) getApplyScratch() *applyScratch {
	if ws, ok := op.applyPool.Get().(*applyScratch); ok {
		return ws
	}
	p2, n2 := 2*op.P, 2*op.N
	return &applyScratch{
		t:  make([]complex128, p2),
		wt: make([]complex128, p2),
		u:  make([]complex128, n2),
	}
}

func (op *Op) getPanels() *smwPanels {
	if ps, ok := op.panelPool.Get().(*smwPanels); ok {
		return ps
	}
	pp := op.P * op.P
	return &smwPanels{x1: make([]complex128, pp), x2: make([]complex128, pp)}
}

// New builds the Hamiltonian operator for the model. The operator works on
// a state-balanced copy of the realization (statespace.Model.Balanced):
// the transfer function — and therefore the Hamiltonian spectrum — is
// unchanged, but the B/C scale disparity of physical macromodels, which
// would otherwise make projected eigenproblems hopelessly ill conditioned,
// is removed.
func New(m *statespace.Model, rep Representation) (*Op, error) {
	return NewWith(m, rep, NewOptions{})
}

// NewWith builds the Hamiltonian operator with explicit path options. With
// Half == HalfAuto (the default) reciprocity is detected on the source
// model — before balancing, so bit-exact symmetry of as-built models is
// seen — and, when it holds, the half-size sweep operator is attached
// (see HalfOp). HalfForce skips detection; HalfOff never attaches it.
// Under HalfAuto a half-path construction failure (e.g. a singular
// coupling) silently falls back to the full path; under HalfForce it is
// an error.
func NewWith(m *statespace.Model, rep Representation, opts NewOptions) (*Op, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	useHalf := false
	switch opts.Half {
	case HalfForce:
		useHalf = true
	case HalfAuto:
		useHalf = m.Reciprocal(opts.HalfTol)
	}
	m = m.Balanced()
	p := m.P
	var w *mat.Dense
	switch rep {
	case Scattering:
		// R = DᵀD − I, S = DDᵀ − I,
		// W = [ −R⁻¹Dᵀ  −R⁻¹ ]
		//     [  S⁻¹     DR⁻¹ ]
		dn, err := mat.Norm2Mat(m.D)
		if err != nil {
			return nil, err
		}
		if dn >= 1 {
			return nil, ErrNotAsymptoticallyPassive
		}
		d := m.D
		r := d.T().Mul(d).Sub(mat.Eye(p))
		s := d.Mul(d.T()).Sub(mat.Eye(p))
		rinv, err := mat.Inverse(r)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: R singular: %w", err)
		}
		sinv, err := mat.Inverse(s)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: S singular: %w", err)
		}
		w = mat.NewDense(2*p, 2*p)
		setBlock(w, 0, 0, rinv.Mul(d.T()).Scale(-1))
		setBlock(w, 0, p, rinv.Scale(-1))
		setBlock(w, p, 0, sinv)
		setBlock(w, p, p, d.Mul(rinv))
	case Immittance:
		// Q = D + Dᵀ,
		// W = [ −Q⁻¹  −Q⁻¹ ]
		//     [  Q⁻¹   Q⁻¹ ]
		q := m.D.Add(m.D.T())
		qinv, err := mat.Inverse(q)
		if err != nil {
			return nil, fmt.Errorf("hamiltonian: D+Dᵀ singular: %w", err)
		}
		w = mat.NewDense(2*p, 2*p)
		setBlock(w, 0, 0, qinv.Scale(-1))
		setBlock(w, 0, p, qinv.Scale(-1))
		setBlock(w, p, 0, qinv)
		setBlock(w, p, p, qinv)
	default:
		return nil, fmt.Errorf("hamiltonian: unknown representation %v", rep)
	}
	op := &Op{Model: m, Rep: rep, N: m.Order(), P: p, w: w, id: opIDs.Add(1)}
	if useHalf {
		h, err := newHalfOp(op)
		if err != nil {
			if opts.Half == HalfForce {
				return nil, err
			}
		} else {
			op.half = h
		}
	}
	return op, nil
}

// Half returns the half-size reciprocal sweep operator, or nil when the
// full-size path is active.
func (op *Op) Half() *HalfOp { return op.half }

// HalfSafeFraction bounds how close (relative to ω) a half-path certified
// disk may approach the origin. Squaring the spectrum costs relative
// resolution near λ = 0: for an eigenvalue at distance d from the shift
// jω, a λ-separation Δ maps to a μ-separation Δ·|λ₁+λ₂| against a μ-scale
// of d·|λ+jω| — a loss factor of roughly 2|λ|/ω when |λ| ≪ ω, which lets
// near-origin eigenvalue pairs collapse into one Ritz ghost while the
// disk still certifies completeness. Keeping the disk radius below this
// fraction of ω bounds the loss factor at 2·(1 − HalfSafeFraction), so
// sweep shifts whose disk would reach closer to the origin run on the
// full-size path instead (they are the O(log) near-origin tail of a
// sweep; the bulk keeps the half-size speedup).
const HalfSafeFraction = 0.75

// HalfRouted reports whether the sweep shift (ω, ρ₀) runs on the
// half-size path: the operator must carry one and the requested disk must
// respect HalfSafeFraction.
func (op *Op) HalfRouted(omega, rho0 float64) bool {
	return op.half != nil && rho0 < HalfSafeFraction*omega
}

// SweepTheta maps a sweep shift (ω, ρ₀) to the shift the routed path
// factors at: jω on the full path, τ = −ω² (the squared eigenvalue) on
// the half path. Core must obtain sweep shifts through this method so
// lazily factored and prefactored shifts agree to the bit.
func (op *Op) SweepTheta(omega, rho0 float64) complex128 {
	if op.HalfRouted(omega, rho0) {
		return complex(-(omega * omega), 0)
	}
	return complex(0, omega)
}

// PrefactorSweep batch-prefactors sweep shifts (as produced by
// SweepTheta) on the path each belongs to. Half-path shifts are exactly
// the ones with a nonzero real part: full-path sweep shifts are purely
// imaginary by construction and half-path shifts are −ω² < 0 (ω = 0
// always routes full).
func (op *Op) PrefactorSweep(thetas []complex128) {
	if op.half == nil {
		op.PrefactorShifts(thetas)
		return
	}
	var full, half []complex128
	for _, th := range thetas {
		if real(th) != 0 {
			half = append(half, th)
		} else {
			full = append(full, th)
		}
	}
	if len(full) > 0 {
		op.PrefactorShifts(full)
	}
	if len(half) > 0 {
		op.half.PrefactorShifts(half)
	}
}

func setBlock(dst *mat.Dense, i0, j0 int, b *mat.Dense) {
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			dst.Set(i0+i, j0+j, b.At(i, j))
		}
	}
}

// Dim returns the dimension 2n of the Hamiltonian matrix.
func (op *Op) Dim() int { return 2 * op.N }

// applyV computes t = V·x = [C·x₁; Bᵀ·x₂], t ∈ C^{2p}.
func (op *Op) applyV(t, x []complex128) {
	n, p := op.N, op.P
	op.Model.CApplyC(t[:p], x[:n])
	op.Model.CApplyBT(t[p:2*p], x[n:2*n])
}

// applyU computes y = U·s = [B·s₁; Cᵀ·s₂], y ∈ C^{2n}.
func (op *Op) applyU(y, s []complex128) {
	n, p := op.N, op.P
	op.Model.CApplyB(y[:n], s[:p])
	op.Model.CApplyCT(y[n:2*n], s[p:2*p])
}

// applyW computes dst = W·t on a 2p complex vector. W is real, so each
// element costs two real multiplies instead of a complex×complex product.
func (op *Op) applyW(dst, t []complex128) {
	p2 := 2 * op.P
	for i := 0; i < p2; i++ {
		var re, im float64
		row := op.w.Row(i)
		for j, wij := range row[:p2] {
			tj := t[j]
			re += wij * real(tj)
			im += wij * imag(tj)
		}
		dst[i] = complex(re, im)
	}
}

// Apply computes y = M·x in O(n·p) without forming M. x and y have length
// 2n and must not alias.
func (op *Op) Apply(y, x []complex128) {
	n := op.N
	if len(x) != 2*n || len(y) != 2*n {
		panic(fmt.Sprintf("hamiltonian: Apply expects vectors of length %d", 2*n))
	}
	// y = K₀·x.
	op.Model.CApplyA(y[:n], x[:n])
	op.Model.CApplyAT(y[n:2*n], x[n:2*n])
	for i := n; i < 2*n; i++ {
		y[i] = -y[i]
	}
	// y += U·W·V·x.
	ws := op.getApplyScratch()
	op.applyV(ws.t, x)
	op.applyW(ws.wt, ws.t)
	op.applyU(ws.u, ws.wt)
	for i, v := range ws.u {
		y[i] += v
	}
	op.applyPool.Put(ws)
}

// shiftFactor is the immutable factored state of one shift-invert setup:
// the shift and the LU-factored 2p×2p SMW capacitance. It is read-only
// after construction, so any number of ShiftOps — across goroutines — may
// apply against the same shiftFactor concurrently (the CLU solve takes
// caller scratch). This is the unit the ShiftCache stores.
type shiftFactor struct {
	theta complex128
	cap   *mat.CLU // factored (I + W·V·G·U), 2p×2p (full path)
	// rcap is the half path's capacitance: for the real shift τ = −ω² the
	// squared operator's SMW capacitance I + V·Gτ·U is real, so half-path
	// factors carry a real LU (cap stays nil) and applies run entirely in
	// real arithmetic.
	rcap *mat.LU
}

// ShiftOp is a shift-invert operator (M − ϑI)⁻¹ for one shift ϑ: a shared
// immutable shiftFactor plus private apply scratch. Each apply costs
// O(n·p). Not safe for concurrent use (scratch buffers); create one per
// goroutine — concurrent ShiftOps may share the underlying factorization.
// Call Release when done: it unpins the cache entry (if the operator came
// from a ShiftCache) and recycles the scratch. Using a ShiftOp after
// Release is a bug.
type ShiftOp struct {
	op    *Op
	fac   *shiftFactor
	entry *cacheEntry // non-nil iff pinned in a ShiftCache
	// scratch
	g, gu   []complex128 // 2n
	t, s    []complex128 // 2p
	permBuf []complex128 // 2p, CLU permutation gather
}

// newShiftOp wraps a factor in a (pooled) ShiftOp shell.
func (op *Op) newShiftOp(fac *shiftFactor, entry *cacheEntry) *ShiftOp {
	if so, ok := op.shiftPool.Get().(*ShiftOp); ok {
		so.fac, so.entry = fac, entry
		return so
	}
	n, p2 := op.N, 2*op.P
	// All persistent ShiftOp scratch in one allocation.
	buf := make([]complex128, 4*n+3*p2)
	return &ShiftOp{
		op:      op,
		fac:     fac,
		entry:   entry,
		g:       buf[:2*n],
		gu:      buf[2*n : 4*n],
		t:       buf[4*n : 4*n+p2],
		s:       buf[4*n+p2 : 4*n+2*p2],
		permBuf: buf[4*n+2*p2:],
	}
}

// Release returns the operator's scratch to the pool and, when the
// factorization came from a ShiftCache, unpins its entry so eviction may
// reclaim it. Safe on nil. Idempotent within one ownership cycle only —
// after Release the ShiftOp may be handed to another goroutine by the
// pool.
func (so *ShiftOp) Release() {
	if so == nil {
		return
	}
	if so.entry != nil {
		so.entry.cache.release(so.entry)
		so.entry = nil
	}
	so.fac = nil
	so.op.shiftPool.Put(so)
}

// ShiftInvert factors (M − ϑI)⁻¹ using the Sherman–Morrison–Woodbury form
//
//	(K₀ − ϑI + UWV)⁻¹ = G − G·U·(I + W·V·G·U)⁻¹·W·V·G,
//	G = blkdiag((A−ϑI)⁻¹, (−Aᵀ−ϑI)⁻¹)
//
// which is algebraically equivalent to paper Eq. 6 but does not require W
// to be invertible. Because G is block diagonal and U, V interleave B, C
// block-wise, the inner matrix is itself block diagonal,
//
//	V·G·U = blkdiag( C·(A−ϑI)⁻¹·B,  −Bᵀ·(Aᵀ+ϑI)⁻¹·Cᵀ ),
//
// and each p×p panel follows the block-sparsity of B, so the whole setup is
// O(n·p) + O(p³) for the capacitance assembly/factorization — not the 2p
// independent O(n·p) column passes of the naive route. Fails with
// ErrSingular when ϑ coincides with an eigenvalue of A/−Aᵀ or of M itself.
//
// When a ShiftCache is attached (EnsureShiftCache / fleet wiring), the
// factored state is looked up by (op, kernel epoch, exact ϑ bits) first and
// only factored on a miss; either way the returned operator is bit-for-bit
// the operator the uncached path would build, so solves are unaffected by
// cache state. Callers must Release the returned ShiftOp.
func (op *Op) ShiftInvert(theta complex128) (*ShiftOp, error) {
	if c := op.cache.Load(); c != nil {
		return c.shiftInvert(op, theta)
	}
	fac, err := op.factorShift(theta)
	if err != nil {
		return nil, err
	}
	return op.newShiftOp(fac, nil), nil
}

// factorShift runs the full SMW setup for one shift: both resolvent panels
// plus capacitance assembly and factorization.
func (op *Op) factorShift(theta complex128) (*shiftFactor, error) {
	// Panels: x1 = C·(A−ϑI)⁻¹·B, x2 = Bᵀ·(Aᵀ−(−ϑ)I)⁻¹·Cᵀ (negated during
	// assembly).
	ps := op.getPanels()
	defer op.panelPool.Put(ps)
	if err := op.Model.CResolventB(ps.x1, theta); err != nil {
		return nil, fmt.Errorf("hamiltonian: shift %v hits a pole: %w", theta, err)
	}
	if err := op.Model.BTResolventCT(ps.x2, -theta); err != nil {
		return nil, fmt.Errorf("hamiltonian: shift %v hits a pole: %w", theta, err)
	}
	return op.assembleFactor(theta, ps.x1, ps.x2)
}

// assembleFactor builds and factors the SMW capacitance from the two
// resolvent panels x1 = C·(A−ϑI)⁻¹·B and x2 = Bᵀ·(Aᵀ+ϑI)⁻¹·Cᵀ (x2 is
// negated in place here). Shared by the single-shift path and the batched
// prefactor path; both hand it bit-identical panels, so the factors agree
// exactly.
func (op *Op) assembleFactor(theta complex128, x1, x2 []complex128) (*shiftFactor, error) {
	p := op.P
	p2 := 2 * p
	for i := range x2 {
		x2[i] = -x2[i]
	}
	// cap = I + W·blkdiag(x1, x2), accumulated row-wise with real×complex
	// products (W is real) against the contiguous panel rows.
	capm := mat.NewCDense(p2, p2)
	for i := 0; i < p2; i++ {
		wrow := op.w.Row(i)
		dst := capm.Row(i)
		for k := 0; k < p; k++ {
			if wik := wrow[k]; wik != 0 {
				x1row := x1[k*p : (k+1)*p]
				out := dst[:p]
				for j, v := range x1row {
					out[j] += complex(wik*real(v), wik*imag(v))
				}
			}
			if wik := wrow[p+k]; wik != 0 {
				x2row := x2[k*p : (k+1)*p]
				out := dst[p:]
				for j, v := range x2row {
					out[j] += complex(wik*real(v), wik*imag(v))
				}
			}
		}
		dst[i]++
	}
	f, err := mat.CLUFactorInPlace(capm)
	if err != nil {
		return nil, fmt.Errorf("hamiltonian: shift %v is (numerically) an eigenvalue: %w", theta, err)
	}
	return &shiftFactor{theta: theta, cap: f}, nil
}

// applyG computes y = G·x = [(A−ϑI)⁻¹x₁; (−Aᵀ−ϑI)⁻¹x₂] in O(n).
func (so *ShiftOp) applyG(y, x []complex128) error {
	n := so.op.N
	theta := so.fac.theta
	if err := so.op.Model.CSolveShiftedA(y[:n], x[:n], theta); err != nil {
		return err
	}
	// (−Aᵀ − ϑI)⁻¹ = −(Aᵀ + ϑI)⁻¹ = −(Aᵀ − (−ϑ)I)⁻¹.
	if err := so.op.Model.CSolveShiftedAT(y[n:2*n], x[n:2*n], -theta); err != nil {
		return err
	}
	for i := n; i < 2*n; i++ {
		y[i] = -y[i]
	}
	return nil
}

// Theta returns the shift.
func (so *ShiftOp) Theta() complex128 { return so.fac.theta }

// Dim returns the dimension 2n of the underlying Hamiltonian.
func (so *ShiftOp) Dim() int { return 2 * so.op.N }

// ApplyBase applies the original (non-inverted) Hamiltonian: y = M·x. It
// lets the Arnoldi layer measure eigenpair residuals in M itself
// (arnoldi.BaseOperator).
func (so *ShiftOp) ApplyBase(y, x []complex128) error {
	so.op.Apply(y, x)
	return nil
}

// Apply computes y = (M − ϑI)⁻¹·x. x and y have length 2n and may alias.
func (so *ShiftOp) Apply(y, x []complex128) error {
	op := so.op
	n := op.N
	if len(x) != 2*n || len(y) != 2*n {
		panic(fmt.Sprintf("hamiltonian: ShiftOp.Apply expects vectors of length %d", 2*n))
	}
	if err := so.applyG(so.g, x); err != nil {
		return err
	}
	op.applyV(so.t, so.g)
	op.applyW(so.s, so.t)
	// Caller-scratch solve: the factorization may be shared with other
	// in-flight ShiftOps via the cache, so it must stay read-only here.
	so.fac.cap.SolveIntoScratch(so.s, so.s, so.permBuf)
	op.applyU(so.gu, so.s)
	if err := so.applyG(so.gu, so.gu); err != nil {
		return err
	}
	for i := 0; i < 2*n; i++ {
		y[i] = so.g[i] - so.gu[i]
	}
	return nil
}
