package hamiltonian

import (
	"math"
	"sync"

	"repro/internal/statespace"
)

// opCacheCap bounds the OpCache map; crossing it drops every entry (the
// attached ShiftCache's stale factorizations then simply age out of its
// LRU). A fleet rarely has more than a handful of distinct live models, so
// the reset is a safety valve, not a working-set policy.
const opCacheCap = 64

// OpCache shares one Hamiltonian operator per (model, representation)
// across concurrent jobs. New balances the model and builds the 2p×2p
// coupling on every call, and a fresh Op means a fresh packed-kernel build
// and an empty factorization identity — so N fleet jobs characterizing the
// same model would each redo that setup and share nothing. Get hands all
// of them the same Op (safe: an Op is read-only after construction) with
// the cache's single ShiftCache attached, so their shift factorizations
// pool too.
//
// Staleness: the Op embeds a balanced CLONE taken at construction, which
// an in-place mutation of the source model (enforcement's residue
// perturbations) does not touch. Get therefore records the source model's
// kernel epoch at build time and rebuilds when it has moved — the same
// epoch discipline the ShiftCache keys on.
type OpCache struct {
	mu     sync.Mutex
	shifts *ShiftCache
	ops    map[opCacheKey]opCacheEntry
}

// opCacheKey includes the half-path options: two jobs asking for the same
// model with different path settings (e.g. an A/B benchmark forcing the
// full path against an auto half path) must get distinct operators.
type opCacheKey struct {
	model   *statespace.Model
	rep     Representation
	half    HalfMode
	halfTol uint64 // math.Float64bits of NewOptions.HalfTol
}

type opCacheEntry struct {
	op    *Op
	epoch uint64
}

// NewOpCache builds an operator cache whose Ops share one ShiftCache of
// the given capacity.
func NewOpCache(shiftCapacity int) *OpCache {
	return &OpCache{
		shifts: NewShiftCache(shiftCapacity),
		ops:    make(map[opCacheKey]opCacheEntry),
	}
}

// ShiftCache returns the shared factorization cache attached to every Op
// the cache hands out.
func (oc *OpCache) ShiftCache() *ShiftCache { return oc.shifts }

// StatsFor attributes the shared cache's traffic to the operator held for
// (m, rep): the hits and misses its own ShiftInvert calls generated. A
// pure peek — it never builds an operator — returning zeros when the cache
// holds none (never characterized, or rebuilt after an epoch move).
func (oc *OpCache) StatsFor(m *statespace.Model, rep Representation) CacheStats {
	return oc.StatsForWith(m, rep, NewOptions{})
}

// StatsForWith is StatsFor for an operator requested with explicit path
// options.
func (oc *OpCache) StatsForWith(m *statespace.Model, rep Representation, opts NewOptions) CacheStats {
	oc.mu.Lock()
	e, ok := oc.ops[opKeyFor(m, rep, opts)]
	oc.mu.Unlock()
	if !ok {
		return CacheStats{}
	}
	return e.op.OpCacheStats()
}

func opKeyFor(m *statespace.Model, rep Representation, opts NewOptions) opCacheKey {
	return opCacheKey{
		model:   m,
		rep:     rep,
		half:    opts.Half,
		halfTol: math.Float64bits(opts.HalfTol),
	}
}

// Get returns the shared operator for (m, rep) with default path options,
// building it on first use or after m's kernel epoch has moved. Errors are
// those of New and are not memoized.
func (oc *OpCache) Get(m *statespace.Model, rep Representation) (*Op, error) {
	return oc.GetWith(m, rep, NewOptions{})
}

// GetWith is Get for an operator built with explicit path options.
func (oc *OpCache) GetWith(m *statespace.Model, rep Representation, opts NewOptions) (*Op, error) {
	k := opKeyFor(m, rep, opts)
	epoch := m.KernelEpoch()
	oc.mu.Lock()
	if e, ok := oc.ops[k]; ok && e.epoch == epoch {
		oc.mu.Unlock()
		return e.op, nil
	}
	oc.mu.Unlock()
	// Build outside the lock: New does real work (balancing, coupling
	// inversion) and must not serialize unrelated models. A racing build of
	// the same key wastes one setup; last writer wins and both Ops are
	// valid.
	op, err := NewWith(m, rep, opts)
	if err != nil {
		return nil, err
	}
	op.SetShiftCache(oc.shifts)
	oc.mu.Lock()
	if len(oc.ops) >= opCacheCap {
		oc.ops = make(map[opCacheKey]opCacheEntry)
	}
	oc.ops[k] = opCacheEntry{op: op, epoch: epoch}
	oc.mu.Unlock()
	return op, nil
}
