package hamiltonian

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestPanelizedShiftInvertMatchesDense drives the panelized SMW setup
// (block-diagonal V·G·U, see ShiftInvert) against a dense LU solve of
// (M − ϑI) across port counts and both representations. This complements
// TestShiftInvertMatchesDenseInverse with the port sizes where the panel
// code paths (multi-block columns, mixed pole content) actually branch.
func TestPanelizedShiftInvertMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, rep := range []Representation{Scattering, Immittance} {
		for p := 1; p <= 8; p++ {
			p := p
			t.Run(fmt.Sprintf("%v/p%d", rep, p), func(t *testing.T) {
				m := testModel(t, int64(30+p), p, 4*p+2, 0.9)
				op, err := New(m, rep)
				if err != nil {
					t.Fatal(err)
				}
				dim := op.Dim()
				dense := op.Dense().ToComplex()
				theta := complex(0.1*rng.NormFloat64(), 0.8*m.MaxPoleMagnitude())
				shifted := dense.Clone()
				for i := 0; i < dim; i++ {
					shifted.Set(i, i, shifted.At(i, i)-theta)
				}
				f, err := mat.CLUFactor(shifted)
				if err != nil {
					t.Fatal(err)
				}
				so, err := op.ShiftInvert(theta)
				if err != nil {
					t.Fatal(err)
				}
				x := randCVec(rng, dim)
				y := make([]complex128, dim)
				if err := so.Apply(y, x); err != nil {
					t.Fatal(err)
				}
				want := f.Solve(x)
				var scale float64 = 1
				for _, v := range want {
					if a := cmplx.Abs(v); a > scale {
						scale = a
					}
				}
				for i := range y {
					if d := cmplx.Abs(y[i] - want[i]); d > 1e-9*scale {
						t.Fatalf("p=%d: panelized SMW mismatch at %d: %g", p, i, d)
					}
				}
			})
		}
	}
}
