package repro_test

import (
	"math"
	"testing"

	"repro"
)

// TestPublicAPIWorkflow exercises the documented quick-start path end to
// end through the façade only.
func TestPublicAPIWorkflow(t *testing.T) {
	model, err := repro.GenerateModel(2024, repro.GenOptions{
		Ports: 2, Order: 30, TargetPeak: 1.05, GridPoints: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if model.P != 2 || model.Order() != 30 {
		t.Fatalf("unexpected model shape %d/%d", model.P, model.Order())
	}
	report, err := repro.Characterize(model, repro.CharOptions{
		Core: repro.SolverOptions{Threads: 2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Passive {
		t.Fatal("calibrated non-passive model reported passive")
	}
	if err := repro.VerifyBySampling(model, report, 300); err != nil {
		t.Fatal(err)
	}
	passive, erep, err := repro.Enforce(model, repro.EnforceOptions{
		Char: repro.CharOptions{Core: repro.SolverOptions{Threads: 2, Seed: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !erep.FinalReport.Passive {
		t.Fatal("enforcement did not produce a passive model")
	}
	after, err := repro.Characterize(passive, repro.CharOptions{
		Core: repro.SolverOptions{Threads: 2, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Passive {
		t.Fatal("re-characterization of the enforced model is not passive")
	}
}

func TestPublicAPISolverBaselinesAgree(t *testing.T) {
	model, err := repro.GenerateModel(31, repro.GenOptions{
		Ports: 2, Order: 24, TargetPeak: 1.04, GridPoints: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := repro.FindImagEigs(model, repro.SolverOptions{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := repro.FindImagEigsSerial(model, repro.SolverOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := repro.FindImagEigsStaticGrid(model, repro.SolverOptions{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*repro.SolverResult{ser, grid} {
		if len(other.Crossings) != len(par.Crossings) {
			t.Fatalf("solver disagreement: %v vs %v", other.Crossings, par.Crossings)
		}
		for i := range par.Crossings {
			if math.Abs(other.Crossings[i]-par.Crossings[i]) > 1e-5*par.OmegaMax {
				t.Fatalf("crossing %d mismatch", i)
			}
		}
	}
}

func TestPublicAPIVectorFitting(t *testing.T) {
	device, err := repro.GenerateModel(99, repro.GenOptions{
		Ports: 2, Order: 12, TargetPeak: 0.9, GridPoints: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := repro.SampleModel(device, repro.LogGrid(3e7, 3e10, 100))
	fit, err := repro.FitVector(samples, 12, repro.VFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSError > 1e-6 {
		t.Fatalf("RMS error %g", fit.RMSError)
	}
	// The fitted model flows into the Hamiltonian machinery.
	if _, err := repro.NewHamiltonian(fit.Model, repro.Scattering); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITableICases(t *testing.T) {
	cases := repro.TableICases()
	if len(cases) != 12 {
		t.Fatalf("expected 12 cases, got %d", len(cases))
	}
	spec, err := repro.FindCase(1)
	if err != nil {
		t.Fatal(err)
	}
	// Build a shrunken variant to keep the test quick but still exercise
	// BuildCase end to end.
	spec.N = 100
	spec.P = 4
	m, err := repro.BuildCase(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 100 || m.P != 4 {
		t.Fatalf("BuildCase produced %d/%d", m.Order(), m.P)
	}
}

func TestPublicAPILinearAlgebra(t *testing.T) {
	a := repro.NewCDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, complex(0, 4))
	s, err := repro.SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-4) > 1e-12 || math.Abs(s[1]-3) > 1e-12 {
		t.Fatalf("singular values %v", s)
	}
	d := repro.NewDense(3, 3)
	if d.Rows != 3 {
		t.Fatal("NewDense shape")
	}
}
