// Package repro is a Go reproduction of
//
//	L. Gobbato, A. Chinea, S. Grivet-Talocia, "A Parallel Hamiltonian
//	Eigensolver for Passivity Characterization and Enforcement of Large
//	Interconnect Macromodels", DATE 2011, pp. 26–31.
//
// It provides, on top of a from-scratch dense/sparse linear-algebra layer:
//
//   - structured state-space macromodels in the multiple-SIMO form of the
//     paper's Eq. 2 (package statespace, re-exported here), including a
//     Vector Fitting identifier for tabulated scattering data;
//   - the scattering Hamiltonian matrix (Eq. 5) with O(n)
//     Sherman–Morrison–Woodbury shift-invert applies (Eq. 6);
//   - the paper's contribution: a parallel multi-shift restarted/deflated
//     Arnoldi eigensolver with dynamic shift scheduling (Sec. IV) that
//     extracts all purely imaginary Hamiltonian eigenvalues;
//   - passivity characterization (violation bands) and iterative residue-
//     perturbation enforcement built on that eigensolver;
//   - a fleet engine (NewFleet / NewFleetEngine) that runs many concurrent
//     characterization and enforcement jobs on one shared worker pool —
//     every compute phase (shifts, band probes, constraint assembly) is a
//     pool task — with per-job priorities and fairness weights, bounded
//     admission, per-job context cancellation, and warm-started
//     enforcement re-characterizations.
//
// Quick start:
//
//	model, _ := repro.GenerateModel(1, repro.GenOptions{Ports: 4, Order: 200, TargetPeak: 1.05})
//	report, _ := repro.Characterize(model, repro.CharOptions{
//	    Core: repro.SolverOptions{Threads: 8},
//	})
//	if !report.Passive {
//	    passiveModel, _, _ := repro.Enforce(model, repro.EnforceOptions{})
//	    _ = passiveModel
//	}
package repro

import (
	"context"
	"io"

	"repro/internal/arnoldi"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hamiltonian"
	"repro/internal/mat"
	"repro/internal/passivity"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/statespace"
	"repro/internal/touchstone"
	"repro/internal/vectfit"
)

// ---- macromodels (paper Sec. II) ----

// Model is a structured state-space macromodel H(s) = D + C(sI−A)⁻¹B in
// the multiple-SIMO block form of paper Eq. 2.
type Model = statespace.Model

// Block is one 1×1 or 2×2 real diagonal block of A.
type Block = statespace.Block

// Column is the SIMO realization of one column of H(s).
type Column = statespace.Column

// GenOptions controls synthetic macromodel generation.
type GenOptions = statespace.GenOptions

// CaseSpec describes one of the paper's twelve Table-I benchmark cases.
type CaseSpec = statespace.CaseSpec

// GenerateModel builds a synthetic stable macromodel with a calibrated
// peak singular value (TargetPeak > 1 yields passivity violations).
func GenerateModel(seed int64, opts GenOptions) (*Model, error) {
	return statespace.Generate(seed, opts)
}

// FromPoleResidue assembles a model from per-column pole–residue data.
func FromPoleResidue(d *Dense, poles [][]complex128, residues []*CDense) (*Model, error) {
	return statespace.FromPoleResidue(d, poles, residues)
}

// TableICases returns the twelve Table-I benchmark specifications.
func TableICases() []CaseSpec { return statespace.TableICases() }

// ReciprocalTableICases returns the reciprocal (symmetric-H) variants of
// the Table-I cases — the inputs on which the half-size Hamiltonian fast
// path engages.
func ReciprocalTableICases() []CaseSpec { return statespace.ReciprocalTableICases() }

// Backend selects which kernel implementation executes the structured-
// operator surface: packed-dense (the Table-I default) or CSR sparse
// (O(nnz) applies and SMW setup for n ≳ 10⁴ port-local models). The zero
// value BackendAuto resolves deterministically from the model structure.
// Set it per model via Model.SetBackend or per characterization via
// CharOptions.Backend; Report.Backend records the dispatcher's choice.
type Backend = statespace.Backend

// Backend values.
const (
	BackendAuto        = statespace.BackendAuto
	BackendPackedDense = statespace.BackendPackedDense
	BackendSparse      = statespace.BackendSparse
)

// BuildCase generates the synthetic macromodel for a Table-I case.
func BuildCase(spec CaseSpec) (*Model, error) { return statespace.BuildCase(spec) }

// FindCase returns the Table-I spec with the given ID (1–12).
func FindCase(id int) (CaseSpec, error) { return statespace.FindCase(id) }

// ---- linear algebra (exposed for advanced use and data interchange) ----

// Dense is a real row-major matrix.
type Dense = mat.Dense

// CDense is a complex row-major matrix.
type CDense = mat.CDense

// NewDense returns a zero rows×cols real matrix.
func NewDense(rows, cols int) *Dense { return mat.NewDense(rows, cols) }

// NewCDense returns a zero rows×cols complex matrix.
func NewCDense(rows, cols int) *CDense { return mat.NewCDense(rows, cols) }

// SingularValues returns the singular values of a complex matrix,
// descending.
func SingularValues(a *CDense) ([]float64, error) { return mat.SingularValues(a) }

// ---- Hamiltonian operators (paper Eqs. 5–6) ----

// Hamiltonian is the structured Hamiltonian operator M with O(n·p) applies
// and SMW shift-invert solves.
type Hamiltonian = hamiltonian.Op

// Representation selects the passivity test encoded by the Hamiltonian.
type Representation = hamiltonian.Representation

// Representation values.
const (
	Scattering = hamiltonian.Scattering
	Immittance = hamiltonian.Immittance
)

// NewHamiltonian builds the Hamiltonian operator of a model.
func NewHamiltonian(m *Model, rep Representation) (*Hamiltonian, error) {
	return hamiltonian.New(m, rep)
}

// HalfMode selects the half-size reciprocal fast path: when a model is
// reciprocal (symmetric H, the common case for passive interconnect), the
// 2n×2n Hamiltonian eigenproblem factors into an n×n squared problem with
// the same crossing semantics at roughly half the Arnoldi cost. HalfAuto
// (the zero value) engages it on detected reciprocity; HalfOff disables
// it; HalfForce errors on non-reciprocal models. Set per characterization
// via CharOptions.Half (+ CharOptions.HalfTol for tolerance-gated
// detection); Report.HalfPath records whether it was available.
type HalfMode = hamiltonian.HalfMode

// HalfMode values.
const (
	HalfAuto  = hamiltonian.HalfAuto
	HalfOff   = hamiltonian.HalfOff
	HalfForce = hamiltonian.HalfForce
)

// ShiftCache is an LRU of factored shift-invert state shared across
// ShiftInvert calls (and, via the fleet engine, across jobs on the same
// model). Results are bit-identical with or without one — the cache only
// skips redundant SMW factorization work. Most callers never touch it
// directly: SolverOptions.ShiftCacheSize and FleetOptions.ShiftCacheSize
// manage attachment.
type ShiftCache = hamiltonian.ShiftCache

// CacheStats is a snapshot of shift-factorization cache traffic (see
// Fleet.ShiftCacheStats and Hamiltonian.OpCacheStats).
type CacheStats = hamiltonian.CacheStats

// NewShiftCache builds a standalone factorization cache for manual wiring
// via Hamiltonian.SetShiftCache (capacity minimum 1).
func NewShiftCache(capacity int) *ShiftCache { return hamiltonian.NewShiftCache(capacity) }

// ---- the parallel eigensolver (paper Secs. III–IV) ----

// SolverOptions configures the multi-shift eigensolver (threads T, κ, α,
// band, Arnoldi parameters).
type SolverOptions = core.Options

// SolverResult carries the crossing frequencies, per-shift records and
// work statistics.
type SolverResult = core.Result

// ArnoldiParams are the single-shift iteration parameters (n_ϑ, d, tol).
type ArnoldiParams = arnoldi.SingleShiftParams

// DefaultShiftCacheSize is the per-solve shift-factorization cache
// capacity used when SolverOptions.ShiftCacheSize is left zero.
const DefaultShiftCacheSize = core.DefaultShiftCacheSize

// FindImagEigs runs the parallel multi-shift solver and returns all purely
// imaginary Hamiltonian eigenvalues of the model (scattering test).
func FindImagEigs(m *Model, opts SolverOptions) (*SolverResult, error) {
	return FindImagEigsRep(m, hamiltonian.Scattering, opts)
}

// FindImagEigsRep is FindImagEigs with an explicit representation: use
// Immittance for admittance/impedance models, where imaginary Hamiltonian
// eigenvalues mark the frequencies at which the Hermitian part of H(jω)
// becomes singular (paper Sec. II: "the same derivations can be performed
// for the impedance, admittance, and hybrid cases").
func FindImagEigsRep(m *Model, rep Representation, opts SolverOptions) (*SolverResult, error) {
	op, err := hamiltonian.New(m, rep)
	if err != nil {
		return nil, err
	}
	return core.Solve(op, opts)
}

// FindImagEigsSerial runs the serial bisection baseline of Sec. III.
func FindImagEigsSerial(m *Model, opts SolverOptions) (*SolverResult, error) {
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		return nil, err
	}
	return core.SolveSerialBisection(op, opts)
}

// FindImagEigsStaticGrid runs the statically pre-distributed shift grid the
// paper argues against in Sec. IV (kept as an ablation baseline).
func FindImagEigsStaticGrid(m *Model, opts SolverOptions) (*SolverResult, error) {
	op, err := hamiltonian.New(m, hamiltonian.Scattering)
	if err != nil {
		return nil, err
	}
	return core.SolveStaticGrid(op, opts)
}

// ---- passivity characterization and enforcement ----

// CharOptions configures characterization.
type CharOptions = passivity.Options

// Report is a full passivity characterization (crossings + bands).
type Report = passivity.Report

// Band is one frequency band with its σ_max classification.
type Band = passivity.Band

// EnforceOptions configures iterative passivity enforcement.
type EnforceOptions = passivity.EnforceOptions

// EnforceReport summarizes an enforcement run.
type EnforceReport = passivity.EnforceReport

// Characterize computes the passivity characterization of a model using
// the parallel Hamiltonian eigensolver.
func Characterize(m *Model, opts CharOptions) (*Report, error) {
	return passivity.Characterize(m, opts)
}

// CharacterizeContext is Characterize with cancellation/deadline support:
// on cancellation the eigensolver drops its remaining shifts and the error
// is ctx.Err().
func CharacterizeContext(ctx context.Context, m *Model, opts CharOptions) (*Report, error) {
	return passivity.CharacterizeContext(ctx, m, opts)
}

// Enforce perturbs the residues of a non-passive model until the
// Hamiltonian test reports passivity. The input model is not modified.
// When the iteration budget is exhausted with violations remaining, the
// partially-enforced model and its report are returned alongside an error
// wrapping ErrEnforcementFailed.
func Enforce(m *Model, opts EnforceOptions) (*Model, *EnforceReport, error) {
	return passivity.Enforce(m, opts)
}

// EnforceContext is Enforce with cancellation/deadline support.
func EnforceContext(ctx context.Context, m *Model, opts EnforceOptions) (*Model, *EnforceReport, error) {
	return passivity.EnforceContext(ctx, m, opts)
}

// ErrEnforcementFailed marks an enforcement run that exhausted its
// iteration budget; the partial model and report accompany it.
var ErrEnforcementFailed = passivity.ErrEnforcementFailed

// VerifyBySampling cross-checks a characterization against a σ_max sweep.
func VerifyBySampling(m *Model, rep *Report, points int) error {
	return passivity.VerifyBySampling(m, rep, points)
}

// ---- vector fitting (paper Sec. II, refs. [1]–[5]) ----

// VFSample is one tabulated frequency response H(jω).
type VFSample = vectfit.Sample

// VFOptions controls the Vector Fitting iteration. Threads parallelizes
// the independent per-column LS solves on a private worker pool; Client
// routes them through a shared pool (e.g. Fleet.NewClient) as PhaseFit
// task batches instead. Either way the fitted model is bit-identical to
// the sequential fit.
type VFOptions = vectfit.Options

// VFResult is a fitted model plus diagnostics.
type VFResult = vectfit.Result

// FitVector identifies a stable rational macromodel from tabulated
// samples by Vector Fitting (per-column SIMO, paper Eq. 2 structure).
func FitVector(samples []VFSample, order int, opts VFOptions) (*VFResult, error) {
	return vectfit.Fit(samples, order, opts)
}

// FitVectorContext is FitVector with cancellation/deadline support: a
// canceled context drops the fit's queued pool tasks and returns ctx.Err().
func FitVectorContext(ctx context.Context, samples []VFSample, order int, opts VFOptions) (*VFResult, error) {
	return vectfit.FitContext(ctx, samples, order, opts)
}

// SampleModel tabulates a model on a frequency grid (stand-in for field
// solver or VNA data in examples and tests).
func SampleModel(m *Model, omegas []float64) []VFSample {
	return vectfit.SampleModel(m, omegas)
}

// LogGrid returns n log-spaced frequencies in [lo, hi].
func LogGrid(lo, hi float64, n int) []float64 { return statespace.LogGrid(lo, hi, n) }

// ---- Touchstone interchange ----

// TouchstoneData is a parsed .snp file.
type TouchstoneData = touchstone.Data

// TouchstoneFormat selects RI/MA/DB column encoding.
type TouchstoneFormat = touchstone.Format

// Touchstone column encodings.
const (
	TouchstoneRI = touchstone.RI
	TouchstoneMA = touchstone.MA
	TouchstoneDB = touchstone.DB
)

// ParseTouchstone reads tabulated S-parameters from a Touchstone stream.
// It buffers every sample; for multi-GB sweeps use NewTouchstoneReader.
func ParseTouchstone(r io.Reader, ports int) (*TouchstoneData, error) {
	return touchstone.Parse(r, ports)
}

// WriteTouchstone emits samples as a Touchstone file (GHz, S-params).
func WriteTouchstone(w io.Writer, samples []VFSample, format TouchstoneFormat, reference float64) error {
	return touchstone.Write(w, samples, format, reference)
}

// TouchstoneReader streams a .snp file one sample at a time with O(ports²)
// working memory; every parse error carries line+byte offsets.
type TouchstoneReader = touchstone.Reader

// TouchstoneParseError is the positioned error type of the streaming
// Touchstone reader.
type TouchstoneParseError = touchstone.ParseError

// NewTouchstoneReader opens a streaming Touchstone parser (reads and
// validates the # option line before returning).
func NewTouchstoneReader(r io.Reader, ports int) (*TouchstoneReader, error) {
	return touchstone.NewReader(r, ports)
}

// VFFitter accumulates samples one at a time into a Vector Fitting system;
// Finish is equivalent to the batch FitVector on the same sequence. Feed
// it from a TouchstoneReader to overlap ingestion I/O with fitting:
//
//	rd, _ := repro.NewTouchstoneReader(f, ports)
//	ft := repro.NewVFFitter(order, repro.VFOptions{})
//	if err := rd.Each(ft.Add); err != nil { ... }
//	fit, err := ft.Finish()
type VFFitter = vectfit.Fitter

// NewVFFitter prepares an incremental Vector Fitting run.
func NewVFFitter(order int, opts VFOptions) *VFFitter {
	return vectfit.NewFitter(order, opts)
}

// CharacterizeTouchstone is the measured-data front door: it streams a
// Touchstone .snp file through parse → Vector Fitting → the Hamiltonian
// passivity characterization, at bounded ingestion memory. It returns the
// fit diagnostics alongside the passivity report (the fit is returned even
// when characterization fails, so callers can report RMS error).
//
// One worker pool spans the whole pipeline: the fit's per-column LS
// solves and the characterization's shifts/probes/refinements all run as
// tasks of one scheduling client. Standalone callers get a private pool
// sized by charOpts.Core.Threads (or vfOpts.Threads, whichever is
// larger); fleet callers share the engine's pool by setting
// vfOpts.Client / charOpts.Core.Client (e.g. from Fleet.NewClient).
func CharacterizeTouchstone(r io.Reader, ports, order int, vfOpts VFOptions, charOpts CharOptions) (*VFResult, *Report, error) {
	if vfOpts.Client == nil {
		if charOpts.Core.Client != nil {
			// The characterization already has a shared-pool identity: the
			// fit rides on it instead of spinning up a second pool.
			vfOpts.Client = charOpts.Core.Client
		} else if charOpts.Core.Pool == nil {
			threads := charOpts.Core.Threads
			if vfOpts.Threads > threads {
				threads = vfOpts.Threads
			}
			pool := core.NewPool(threads)
			defer pool.Close()
			client := pool.NewClient(core.ClientOptions{})
			vfOpts.Client = client
			charOpts.Core.Pool = pool
			charOpts.Core.Client = client
		} else {
			vfOpts.Client = charOpts.Core.Pool.NewClient(core.ClientOptions{})
		}
	}
	rd, err := touchstone.NewReader(r, ports)
	if err != nil {
		return nil, nil, err
	}
	ft := vectfit.NewFitter(order, vfOpts)
	if err := rd.Each(ft.Add); err != nil {
		return nil, nil, err
	}
	fit, err := ft.Finish()
	if err != nil {
		return nil, nil, err
	}
	rep, err := passivity.Characterize(fit.Model, charOpts)
	if err != nil {
		return fit, nil, err
	}
	return fit, rep, nil
}

// ---- the fleet engine (shared-pool multi-model jobs) ----

// Fleet runs many concurrent Characterize/Enforce jobs on one shared
// worker pool sized to the machine, instead of oversubscribing it with
// per-solve thread pools. Every compute phase — eigensolver shifts, band
// probes, constraint assembly — runs as pool tasks under the job's
// priority class and fairness weight. Submit returns a FleetJob handle;
// cancellation is per-job via contexts.
type Fleet = fleet.Engine

// FleetOptions configures a fleet engine: worker count, admission cap
// (MaxQueued bounds admitted-but-unfinished jobs; Submit blocks or, with
// FailFast, returns ErrFleetQueueFull).
type FleetOptions = fleet.EngineOptions

// FleetRequest describes one fleet job: a model plus either
// characterization options or (when Enforce is non-nil) enforcement
// options, a Priority class, and a fairness Weight.
type FleetRequest = fleet.Request

// FleetJob is the handle of a submitted fleet job.
type FleetJob = fleet.Job

// FleetResult is the outcome of a fleet job.
type FleetResult = fleet.Result

// PriorityClass selects a fleet job's scheduling tier on the shared pool.
type PriorityClass = core.PriorityClass

// Client is a scheduling identity on a shared worker pool: a priority
// class plus a weighted-round-robin fairness share. Every compute phase
// submitted under one client — eigensolver shifts, band probes,
// constraint assembly, Vector Fitting columns, refinement tails — obeys
// that one policy. Obtain one from Fleet.NewClient and pass it through
// VFOptions.Client or SolverOptions.Client.
type Client = core.Client

// Priority classes: interactive tasks pop before any queued batch task
// (preemption at task granularity; in-flight tasks finish first).
const (
	PriorityBatch       = core.PriorityBatch
	PriorityInteractive = core.PriorityInteractive
)

// PhaseStat aggregates pool-worker tasks and busy time for one compute
// phase (see Fleet.PhaseStats and cmd/fleetbench's utilization report).
type PhaseStat = core.PhaseStat

// ErrFleetQueueFull is returned by Submit on a FailFast fleet engine whose
// admission queue is at MaxQueued.
var ErrFleetQueueFull = fleet.ErrQueueFull

// NewFleet starts a fleet engine with the given shared-pool worker count
// (≤ 0 means GOMAXPROCS) and unbounded admission. Close it to release the
// workers.
func NewFleet(workers int) *Fleet { return fleet.New(workers) }

// NewFleetEngine starts a fleet engine with full production options
// (bounded admission, fail-fast submits).
func NewFleetEngine(opts FleetOptions) *Fleet { return fleet.NewEngine(opts) }

// ---- HTTP service layer (cmd/passivityd) ----

// ProgressEvent is one observational solver-progress notification,
// delivered through SolverOptions.Progress / FleetRequest.Progress as
// compute tasks complete: the certified disk (or probed band) location,
// near-axis eigenvalues as found, and a live done/total count per phase.
// Events are emitted after the scheduler commits each completion, so
// consuming them cannot perturb the bit-identical result.
type ProgressEvent = core.ProgressEvent

// Passivityd is the HTTP front door over a fleet engine: job submission
// (JSON model specs or Touchstone streams), SSE progress/crossing
// events, report retrieval, cancellation, and graceful drain. It
// implements http.Handler; cmd/passivityd wraps it in a daemon.
type Passivityd = server.Server

// PassivitydConfig wires a Passivityd to its engine.
type PassivitydConfig = server.Config

// JobSpec is the JSON body of a model-spec job submission to the
// service layer's POST /v1/jobs.
type JobSpec = server.JobSpec

// ReportDoc is the service layer's wire form of a Report; its
// deterministic sections round-trip through JSON bit-exactly.
type ReportDoc = server.ReportDoc

// NewPassivityd builds the service-layer handler set around an engine.
func NewPassivityd(cfg PassivitydConfig) *Passivityd { return server.New(cfg) }

// NewReportDoc converts an in-process report to its wire form.
func NewReportDoc(r *Report) *ReportDoc { return server.NewReportDoc(r) }

// ---- adaptive-sampling baseline (paper ref. [17]) ----

// SamplingOptions configures the adaptive-sweep characterization baseline.
type SamplingOptions = sampling.Options

// SamplingResult is the adaptive-sweep outcome.
type SamplingResult = sampling.Result

// CharacterizeBySampling runs the pre-Hamiltonian adaptive-sampling
// passivity test (ref. [17]). It is cheap and parallel but can only
// certify passivity up to its frequency resolution — the weakness the
// Hamiltonian eigensolver removes.
func CharacterizeBySampling(m *Model, opts SamplingOptions) (*SamplingResult, error) {
	return CharacterizeBySamplingContext(context.Background(), m, opts)
}

// CharacterizeBySamplingContext is CharacterizeBySampling with
// cancellation: ctx aborts the sweep between σ evaluations and drops any
// queued pool tasks of its bootstrap batch.
func CharacterizeBySamplingContext(ctx context.Context, m *Model, opts SamplingOptions) (*SamplingResult, error) {
	return sampling.CharacterizeContext(ctx, m, opts)
}
