package repro_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro"
)

// TestCharacterizeTouchstone exercises the measured-data front door
// through the façade only: a non-passive device serialized to a Touchstone
// stream must come back as a non-passive report via the streaming
// parse → vector fit → Hamiltonian pipeline.
func TestCharacterizeTouchstone(t *testing.T) {
	device, err := repro.GenerateModel(42, repro.GenOptions{
		Ports: 2, Order: 12, TargetPeak: 1.05, GridPoints: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := repro.SampleModel(device, repro.LogGrid(2*math.Pi*1e8, 2*math.Pi*2e10, 200))
	var file bytes.Buffer
	if err := repro.WriteTouchstone(&file, samples, repro.TouchstoneRI, 50); err != nil {
		t.Fatal(err)
	}

	fit, report, err := repro.CharacterizeTouchstone(&file, 2, 12,
		repro.VFOptions{}, repro.CharOptions{Core: repro.SolverOptions{Threads: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSError > 1e-6 {
		t.Fatalf("fit RMS %g", fit.RMSError)
	}
	if report.Passive {
		t.Fatal("non-passive device reported passive through the touchstone pipeline")
	}
	if len(report.Violations()) == 0 {
		t.Fatal("no violation bands reported")
	}
}

// TestCharacterizeTouchstoneParseError: ingestion failures surface the
// streaming reader's positioned errors through the façade.
func TestCharacterizeTouchstoneParseError(t *testing.T) {
	bad := "# GHz S RI R 50\n1 0.5 0.1\n2 oops 0.1\n"
	_, _, err := repro.CharacterizeTouchstone(strings.NewReader(bad), 1, 8,
		repro.VFOptions{}, repro.CharOptions{})
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a positioned parse error, got %v", err)
	}
	var pe *repro.TouchstoneParseError
	if !errors.As(err, &pe) || pe.Line != 3 {
		t.Fatalf("error %v is not a positioned TouchstoneParseError", err)
	}
}
